//! Leaf-schedule baseline — Liu & Vuong \[8\].
//!
//! The requesting leaf computes the complete transmission schedule
//! itself and ships every contents peer its share. One round, `n`
//! messages — but the messages carry explicit schedules (size
//! proportional to the content), the leaf must know every peer's
//! capability up front, and nothing adapts once streaming starts.

use std::sync::Arc;

use mss_sim::prelude::*;

use crate::config::SessionConfig;
use crate::msg::{Msg, ScheduleAssignment};
use crate::peer_core::{Core, PeerReport, TAG_SEND, TAG_SWITCH};
use crate::schedule::TxSchedule;
use mss_overlay::{Directory, PeerId};

/// A contents peer running the leaf-schedule baseline.
pub struct SchedulePeer {
    core: Core,
}

impl SchedulePeer {
    /// Peer `me` of a leaf-schedule session.
    pub fn new(me: PeerId, dir: impl Into<Arc<Directory>>, cfg: SessionConfig) -> SchedulePeer {
        SchedulePeer {
            core: Core::new(me, dir, cfg),
        }
    }

    /// Post-run state snapshot.
    pub fn report(&self) -> PeerReport {
        self.core.report()
    }

    fn on_assign(&mut self, ctx: &mut dyn Runtime<Msg>, a: ScheduleAssignment) {
        let assignment = TxSchedule {
            seq: a.sched.into(),
            pos: 0,
            interval_nanos: a.interval_nanos,
            first_delay_nanos: a.interval_nanos.saturating_mul(u64::from(a.part) + 1)
                / u64::from(a.parts).max(1),
        };
        self.core.adopt(ctx, assignment);
        self.core.record_activation(ctx, 1);
    }
}

impl Actor<Msg> for SchedulePeer {
    fn on_message(&mut self, ctx: &mut dyn Runtime<Msg>, _from: ActorId, msg: Msg) {
        match msg {
            Msg::Assign(a) => self.on_assign(ctx, *a),
            Msg::Nack(n) => self.core.on_nack(ctx, &n),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<Msg>, _timer: TimerId, tag: u64) {
        match tag {
            TAG_SEND => self.core.on_send_timer(ctx),
            TAG_SWITCH => self.core.on_switch_timer(ctx),
            _ => {}
        }
    }

    mss_sim::impl_as_any!();
}
