//! The comparison protocols of §3.1 and the paper's references \[5\]/\[8\].
//!
//! - [`broadcast`]: leaf floods everyone; group-communication state
//!   exchange (Figure 4(1)),
//! - [`centralized`]: 2PC-style controller coordination (Itaya et al. \[5\]),
//! - [`leaf_schedule`]: leaf-computed explicit schedules (Liu & Vuong \[8\]).
//!
//! The unicast-chain baseline (Figure 4(2)) is [`crate::dcop::DcopPeer`]
//! run with `H = 1`.

pub mod broadcast;
pub mod centralized;
pub mod leaf_schedule;

pub use broadcast::BroadcastPeer;
pub use centralized::CentralizedPeer;
pub use leaf_schedule::SchedulePeer;
