//! Transmission-schedule machinery: `Mark`, postfix derivation,
//! re-division, rates, and multi-parent merging (§3.3–§3.4).
//!
//! Rates are carried as per-packet intervals in nanoseconds. A division
//! into `parts` with parity interval `h` turns a schedule of rate `r`
//! into `parts` schedules of rate `r·(h+1)/(h·parts)` each — the paper's
//! `τ_i := c.τ(h+1)/(h·H)` — so the subtree's aggregate rate carries the
//! parity overhead `(h+1)/h`. Whether that overhead compounds with tree
//! depth is governed by [`Reenhance`].

use std::sync::Arc;

use mss_media::parity::{enhance, Coding};
use mss_media::{PacketId, PacketSeq, SeqView};

use crate::config::Reenhance;

/// A peer's live transmission schedule.
///
/// Interval sentinel: an `interval_nanos` of `0` or `u64::MAX` both mean
/// *no steady rate* — the schedule is idle (nothing is paced by it).
/// `u64::MAX` is what [`TxSchedule::idle`] produces; `0` can reach a peer
/// in a malformed or degenerate control packet and must read the same
/// way, never as "infinitely fast". Every consumer of the field
/// ([`TxSchedule::rate_pps`], [`harmonic_interval`], [`mark_position`])
/// goes through [`idle_interval`] so the two encodings stay
/// interchangeable.
#[derive(Clone, Debug, PartialEq)]
pub struct TxSchedule {
    /// Packets to send, in order — a strided view into the refcounted
    /// division basis. A schedule, once derived, is immutable (updates
    /// replace the whole view), so cloning a schedule or dealing out a
    /// round-robin part is O(1): an `Arc` bump plus stride arithmetic,
    /// never an element copy (see [`mss_media::SeqView`]).
    pub seq: SeqView,
    /// Index of the next packet to send.
    pub pos: usize,
    /// Nanoseconds between consecutive packet transmissions; `0` and
    /// `u64::MAX` both denote "idle, no steady rate" (see type docs).
    pub interval_nanos: u64,
    /// Delay before the *first* transmission: part `i` of a division is
    /// phase-shifted by `i` enhanced-stream slots so the `parts` senders
    /// interleave instead of bursting together — without this, a sender
    /// holding a single packet would sit idle for one whole `interval`
    /// (the entire window) before sending it.
    pub first_delay_nanos: u64,
}

impl TxSchedule {
    /// An empty, idle schedule.
    pub fn idle() -> TxSchedule {
        TxSchedule {
            seq: SeqView::empty(),
            pos: 0,
            interval_nanos: u64::MAX,
            first_delay_nanos: u64::MAX,
        }
    }

    /// Delay before the next transmission: the phase offset for the first
    /// packet, the steady interval afterwards.
    pub fn delay_for_next(&self) -> u64 {
        if self.pos == 0 {
            self.first_delay_nanos
        } else {
            self.interval_nanos
        }
    }

    /// True when every packet has been sent.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.seq.len()
    }

    /// Packets not yet sent, materialized.
    pub fn remaining(&self) -> PacketSeq {
        PacketSeq::from_ids(self.seq.iter_from(self.pos).cloned().collect())
    }

    /// Sending rate in packets/second (0 when idle).
    pub fn rate_pps(&self) -> f64 {
        if idle_interval(self.interval_nanos) || self.exhausted() {
            0.0
        } else {
            1e9 / self.interval_nanos as f64
        }
    }
}

/// True when `nanos` is one of the two "no steady rate" sentinel values
/// (see [`TxSchedule`] docs).
pub fn idle_interval(nanos: u64) -> bool {
    nanos == 0 || nanos == u64::MAX
}

/// Interval after dividing a rate-`interval` stream into `parts` with
/// parity interval `h`: `interval · h · parts / (h + 1)`.
///
/// (Dividing slows each sender down by `parts`, re-enhancement speeds the
/// aggregate up by `(h+1)/h`.)
pub fn divided_interval(interval_nanos: u64, h: usize, parts: usize) -> u64 {
    // `h` and `parts` come off the wire in control packets; a malformed
    // zero must not crash the peer, so clamp instead of panicking.
    debug_assert!(h >= 1 && parts >= 1, "divided_interval({h}, {parts})");
    let num = interval_nanos as u128 * h.max(1) as u128 * parts.max(1) as u128;
    let den = (h.max(1) + 1) as u128;
    (num / den).max(1) as u64
}

/// The initial assignment a contents peer derives from the leaf's content
/// request (§3.4 step 2): its part of `Div(Esq(pkt, h), parts)`.
pub fn initial_assignment(
    content_packets: u64,
    h: usize,
    parts: usize,
    part: usize,
    content_interval_nanos: u64,
) -> TxSchedule {
    initial_assignment_opts(
        content_packets,
        h,
        parts,
        part,
        content_interval_nanos,
        true,
        Coding::Xor,
    )
}

/// [`initial_assignment`] with explicit trailing-segment parity handling
/// (see [`mss_media::parity::esq_opts`]).
#[allow(clippy::too_many_arguments)]
pub fn initial_assignment_opts(
    content_packets: u64,
    h: usize,
    parts: usize,
    part: usize,
    content_interval_nanos: u64,
    tail_parity: bool,
    coding: Coding,
) -> TxSchedule {
    let enhanced = Arc::new(enhance(
        &PacketSeq::data_range(content_packets),
        h,
        tail_parity,
        coding,
    ));
    initial_assignment_from_enhanced(
        &enhanced,
        content_packets,
        parts,
        part,
        content_interval_nanos,
    )
}

/// The division step of [`initial_assignment_opts`] given an
/// already-enhanced content stream. The enhanced sequence depends only on
/// `(content_packets, h, tail_parity, coding)` — constants of a session —
/// so a plane hosting many peers computes it once
/// ([`crate::plane::RoundShared::enhanced_content`]) and each activation
/// takes its part as an O(1) strided view of the shared sequence.
pub fn initial_assignment_from_enhanced(
    enhanced: &Arc<PacketSeq>,
    content_packets: u64,
    parts: usize,
    part: usize,
    content_interval_nanos: u64,
) -> TxSchedule {
    let slot = (content_interval_nanos as u128 * content_packets as u128
        / enhanced.len().max(1) as u128)
        .max(1) as u64;
    DivisionBasis::new(enhanced.clone(), slot).assign(parts, part)
}

/// Heterogeneous initial assignment (the paper's §2 allocation applied
/// to the §3 division, and its §5 future work): the enhanced sequence is
/// dealt to the initially selected peers *in proportion to their
/// bandwidths* using the time-slot algorithm, instead of round-robin.
/// Each peer is paced so that it finishes its share exactly when the
/// whole content finishes at the content rate — a peer with twice the
/// bandwidth carries twice the packets at twice the rate.
#[allow(clippy::too_many_arguments)]
pub fn weighted_initial_assignment(
    content_packets: u64,
    h: usize,
    weights: &[u64],
    my_index: usize,
    content_interval_nanos: u64,
    tail_parity: bool,
    coding: Coding,
) -> TxSchedule {
    let enhanced = enhance(
        &PacketSeq::data_range(content_packets),
        h,
        tail_parity,
        coding,
    );
    weighted_initial_from_enhanced(
        &enhanced,
        content_packets,
        weights,
        my_index,
        content_interval_nanos,
    )
}

/// The allocation step of [`weighted_initial_assignment`] given an
/// already-enhanced content stream (see
/// [`initial_assignment_from_enhanced`] for why the enhancement is
/// computed separately).
pub fn weighted_initial_from_enhanced(
    enhanced: &PacketSeq,
    content_packets: u64,
    weights: &[u64],
    my_index: usize,
    content_interval_nanos: u64,
) -> TxSchedule {
    // `my_index` is derived from a control packet; an out-of-range value
    // means the sender allocated us nothing — idle, not a crash.
    debug_assert!(my_index < weights.len(), "{my_index} ≥ {}", weights.len());
    if my_index >= weights.len() {
        return TxSchedule::idle();
    }
    let e = enhanced.len();
    if e == 0 {
        return TxSchedule::idle();
    }
    let alloc = mss_media::slots::allocate(weights, e as u64);
    let mine = &alloc.per_channel[my_index]; // 1-based positions into `enhanced`
    if mine.is_empty() {
        return TxSchedule::idle();
    }
    let seq = PacketSeq::from_ids(
        mine.iter()
            .map(|&pos| enhanced.ids()[(pos - 1) as usize].clone())
            .collect(),
    );
    // The whole enhanced stream spans the content window.
    let window = content_interval_nanos as u128 * content_packets as u128;
    let count = mine.len() as u128;
    let interval = (window / count).max(1) as u64;
    let first_delay = ((window * mine[0] as u128) / e as u128).max(1) as u64;
    TxSchedule {
        seq: seq.into(),
        pos: 0,
        interval_nanos: interval,
        first_delay_nanos: first_delay,
    }
}

/// `Mark`: the position in the parent's schedule the division applies
/// from. The parent sent the control packet when about to transmit
/// position `pos_at_send`; by the switch instant `δ` later it has sent
/// `δ / τ_j` more packets.
pub fn mark_position(pos_at_send: usize, interval_nanos: u64, delta_nanos: u64) -> usize {
    if idle_interval(interval_nanos) {
        return pos_at_send;
    }
    pos_at_send + (delta_nanos / interval_nanos) as usize
}

/// Derive one part of a divided schedule from the parent's schedule:
/// postfix from the mark, re-protected with parity interval `h`, dealt
/// into `parts` round-robin subsequences (§3.4 step 3; parent keeps part
/// 0, children get parts 1…).
///
/// Under [`Reenhance::DataOnly`] the postfix's old parity packets are
/// replaced by fresh parity over its data, keeping parity density at
/// `1/h` regardless of tree depth; [`Reenhance::Nested`] re-enhances the
/// enhanced postfix as-is (the paper's §3.6 nested-parity examples).
///
/// The per-part interval paces the division so that its `parts` senders
/// jointly finish when the undivided postfix would have:
/// `interval · |postfix| · parts / |division|` — which reduces to the
/// paper's `τ_i = τ_j(h+1)/(h(H+1))` when the lengths divide evenly.
#[allow(clippy::too_many_arguments)]
pub fn derived_assignment(
    parent_sched: &SeqView,
    pos_at_send: usize,
    parent_interval_nanos: u64,
    delta_nanos: u64,
    h: usize,
    parts: usize,
    part: usize,
    mode: Reenhance,
) -> TxSchedule {
    derived_assignment_opts(
        parent_sched,
        pos_at_send,
        parent_interval_nanos,
        delta_nanos,
        h,
        parts,
        part,
        mode,
        true,
        Coding::Xor,
    )
}

/// [`derived_assignment`] with explicit trailing-segment parity handling
/// (see [`mss_media::parity::esq_opts`]).
#[allow(clippy::too_many_arguments)]
pub fn derived_assignment_opts(
    parent_sched: &SeqView,
    pos_at_send: usize,
    parent_interval_nanos: u64,
    delta_nanos: u64,
    h: usize,
    parts: usize,
    part: usize,
    mode: Reenhance,
    tail_parity: bool,
    coding: Coding,
) -> TxSchedule {
    DivisionBasis::derive(
        parent_sched,
        pos_at_send,
        parent_interval_nanos,
        delta_nanos,
        h,
        mode,
        tail_parity,
        coding,
    )
    .assign(parts, part)
}

/// The part-independent half of a division: the re-protected postfix
/// every part is dealt from, plus the pacing of one enhanced-stream
/// slot.
///
/// All `parts` schedules of one fan-out — the parent's own part 0 and
/// each child's part — derive from identical inputs except the part
/// index, so the mark/postfix/re-enhance work is the same computation
/// repeated `parts` times. A parent computes the basis once
/// ([`DivisionBasis::derive`]) and ships it inside the control packet as
/// a derivation cache; every receiver then deals out its own part with
/// [`DivisionBasis::assign`] in O(1) — a strided [`SeqView`] over the
/// shared basis, no element ever copied. The wire format is unchanged:
/// like the in-memory `sched`, the basis is re-derivable from the
/// packet's recipe fields, so it contributes nothing to
/// [`crate::msg::Msg::wire_size`] and codecs simply drop it (a decoding
/// receiver falls back to deriving from the recipe — bit-identical, per
/// this type's contract).
#[derive(Clone, Debug, PartialEq)]
pub struct DivisionBasis {
    /// The re-protected postfix the division deals out round-robin.
    /// Empty ⇔ every part of this division is [`TxSchedule::idle`].
    pub enhanced: Arc<PacketSeq>,
    /// Pacing of one enhanced-stream slot in nanoseconds: part `i` of
    /// `parts` sends every `slot · parts` ns starting at `slot · (i+1)`.
    pub slot_nanos: u64,
}

impl DivisionBasis {
    /// Basis over an already-enhanced sequence with an explicit slot —
    /// the initial-division form, where `enhanced` is the protected full
    /// content and the slot is one content-rate packet interval.
    pub fn new(enhanced: Arc<PacketSeq>, slot_nanos: u64) -> DivisionBasis {
        DivisionBasis {
            enhanced,
            slot_nanos,
        }
    }

    /// A basis whose every assignment is idle.
    fn idle() -> DivisionBasis {
        DivisionBasis::new(Arc::new(PacketSeq::new()), u64::MAX)
    }

    /// Compute the shared basis of a division of `parent_sched` (see
    /// [`derived_assignment_opts`] for the semantics of each argument).
    #[allow(clippy::too_many_arguments)]
    pub fn derive(
        parent_sched: &SeqView,
        pos_at_send: usize,
        parent_interval_nanos: u64,
        delta_nanos: u64,
        h: usize,
        mode: Reenhance,
        tail_parity: bool,
        coding: Coding,
    ) -> DivisionBasis {
        let mark = mark_position(pos_at_send, parent_interval_nanos, delta_nanos);
        // The postfix is iterated straight off the parent's view — never
        // materialized: every mode below builds its (re-protected) basis
        // in one pass over `iter_from(mark)`.
        let postfix_len = parent_sched.len().saturating_sub(mark);
        if postfix_len == 0 {
            return DivisionBasis::idle();
        }
        let postfix = parent_sched.iter_from(mark);
        if mode == Reenhance::None {
            return DivisionBasis::new(
                Arc::new(PacketSeq::from_ids(postfix.cloned().collect())),
                parent_interval_nanos,
            );
        }
        let basis = match mode {
            Reenhance::None => unreachable!("handled above"),
            Reenhance::Nested => PacketSeq::from_ids(postfix.cloned().collect()),
            // Distinct data packets only: parity is regenerated fresh, and
            // `h = 1` duplicates (parity of a single packet IS that packet)
            // must not multiply across division levels.
            Reenhance::DataOnly => {
                // Enhanced/divided schedules keep data seqs strictly
                // ascending, so one ordered pass usually proves
                // distinctness; only out-of-order postfixes (multi-parent
                // merges) pay for a dedup set.
                let mut data: Vec<PacketId> = Vec::with_capacity(postfix_len);
                let mut last = 0u64; // data seqs start at 1
                let mut ascending = true;
                for p in postfix.clone() {
                    if let PacketId::Data(s) = p {
                        if s.0 <= last {
                            ascending = false;
                            break;
                        }
                        last = s.0;
                        data.push(p.clone());
                    }
                }
                if !ascending {
                    data.clear();
                    let mut seen = mss_media::fxhash::FxHashSet::default();
                    data.extend(
                        postfix
                            .filter(|p| matches!(p, PacketId::Data(s) if seen.insert(s.0)))
                            .cloned(),
                    );
                }
                PacketSeq::from_ids(data)
            }
        };
        let enhanced = enhance(&basis, h, tail_parity, coding);
        if enhanced.is_empty() {
            return DivisionBasis::idle();
        }
        let slot = (parent_interval_nanos as u128 * postfix_len as u128 / enhanced.len() as u128)
            .max(1) as u64;
        DivisionBasis::new(Arc::new(enhanced), slot)
    }

    /// Deal out part `part` of `parts`. With the same inputs this returns
    /// exactly what [`derived_assignment_opts`] returns — that function
    /// *is* `derive(..).assign(parts, part)`.
    ///
    /// O(1): the part is a strided [`SeqView`] over the shared basis
    /// (an `Arc` bump plus stride arithmetic) — every receiver of one
    /// fan-out reads its share out of the same underlying sequence.
    pub fn assign(&self, parts: usize, part: usize) -> TxSchedule {
        if self.enhanced.is_empty() {
            return TxSchedule::idle();
        }
        TxSchedule {
            seq: SeqView::part(self.enhanced.clone(), parts, part),
            pos: 0,
            interval_nanos: self.slot_nanos.saturating_mul(parts as u64),
            first_delay_nanos: self.slot_nanos.saturating_mul(part as u64 + 1),
        }
    }
}

/// Merge a new assignment into an already-running schedule — the DCoP
/// multi-parent rule `pkt_i := pkt_i ∪ pkt_ji` (§3.3). The unsent
/// remainder of the current schedule is unioned with the new assignment
/// (readiness order); the rates add (harmonic interval), since the child
/// must deliver both parents' shares on time.
///
/// Both operands stay borrowed: the unsent tail and the incoming
/// assignment are iterated straight off their strided views and the
/// union merges directly into the output sequence
/// ([`PacketSeq::union_iters`]), with no intermediate postfix copy or
/// throwaway index build.
pub fn merge_assignment(current: &TxSchedule, incoming: &TxSchedule) -> TxSchedule {
    // Single-sided unions need no union at all, just a reference to the
    // surviving side — and both shapes are common: deep divisions hand
    // out many empty parts (the union is the unsent tail, an O(1) suffix
    // view), and a freshly-activated or exhausted child has no tail (the
    // union is the incoming view verbatim).
    let seq = if incoming.seq.is_empty() {
        current.seq.suffix(current.pos)
    } else if current.pos >= current.seq.len() {
        incoming.seq.clone()
    } else {
        PacketSeq::union_iters(current.seq.iter_from(current.pos), incoming.seq.iter()).into()
    };
    let interval = harmonic_interval(current.interval_nanos, incoming.interval_nanos);
    TxSchedule {
        seq,
        pos: 0,
        interval_nanos: interval,
        first_delay_nanos: current
            .delay_for_next()
            .min(incoming.first_delay_nanos)
            .min(interval),
    }
}

/// Interval of the combined stream of two senders merged into one: rates
/// add, so intervals combine harmonically (`a·b/(a+b)`). An idle operand
/// (`0` or `u64::MAX`, see [`TxSchedule`] docs) contributes no rate, so
/// the other interval passes through unchanged.
pub fn harmonic_interval(a: u64, b: u64) -> u64 {
    if idle_interval(a) {
        return b;
    }
    if idle_interval(b) {
        return a;
    }
    ((a as u128 * b as u128) / (a as u128 + b as u128)).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mss_media::packet::{PacketId, Seq};

    #[test]
    fn divided_interval_matches_rate_formula() {
        // τ_i = τ(h+1)/(hH): interval_i = interval·h·H/(h+1).
        let iv = divided_interval(1_000, 2, 3);
        assert_eq!(iv, 2_000);
        // h = H-1 = 59, H = 60: interval · 59·60/60 = interval · 59.
        assert_eq!(divided_interval(1_000, 59, 60), 59_000);
    }

    #[test]
    fn initial_assignments_partition_the_enhanced_sequence() {
        // l = 39 divides into 13 full segments of h = 3: |[pkt]^3| = 52.
        let parts: Vec<TxSchedule> = (0..4)
            .map(|i| initial_assignment(39, 3, 4, i, 1_000))
            .collect();
        let total: usize = parts.iter().map(|p| p.seq.len()).sum();
        let enhanced = enhance(&PacketSeq::data_range(39), 3, true, Coding::Xor);
        assert_eq!(total, enhanced.len());
        // slot = 1000·39/52 = 750 ns; interval = slot·parts = 3000 ns —
        // the paper's τ_i = τ(h+1)/(hH).
        assert_eq!(parts[0].interval_nanos, 3_000);
        // Phase offsets interleave the senders one slot apart.
        assert_eq!(parts[0].first_delay_nanos, 750);
        assert_eq!(parts[3].first_delay_nanos, 3_000);
    }

    #[test]
    fn aggregate_rate_has_parity_overhead() {
        // H senders at τ(h+1)/(hH) each: aggregate = τ(h+1)/h
        // (exact when h divides the content length).
        let h = 3;
        let parts = 4;
        let content_interval = 1_000u64;
        let s = initial_assignment(999, h, parts, 0, content_interval);
        let aggregate = parts as f64 * s.rate_pps();
        let content_rate = 1e9 / content_interval as f64;
        let overhead = aggregate / content_rate;
        assert!((overhead - (h as f64 + 1.0) / h as f64).abs() < 1e-6);
    }

    #[test]
    fn mark_advances_by_delta_over_interval() {
        assert_eq!(mark_position(10, 1_000, 5_000), 15);
        assert_eq!(mark_position(10, 1_000, 5_999), 15);
        assert_eq!(mark_position(0, u64::MAX, 1_000), 0, "idle parent");
    }

    #[test]
    fn derived_assignments_partition_the_postfix() {
        let parent = SeqView::from(PacketSeq::data_range(30));
        let shares: Vec<TxSchedule> = (0..3)
            .map(|i| derived_assignment(&parent, 4, 1_000, 6_000, 2, 3, i, Reenhance::Nested))
            .collect();
        // Mark = 4 + 6 = 10; postfix = t11..t30 (20 pkts) enhanced → 30.
        let total: usize = shares.iter().map(|s| s.seq.len()).sum();
        assert_eq!(total, 30);
        // The union of shares contains every postfix data packet.
        let mut all = PacketSeq::new();
        for s in &shares {
            all = all.union(&s.seq.to_seq());
        }
        for t in 11..=30u64 {
            assert!(
                all.contains(&PacketId::Data(Seq(t))),
                "t{t} missing from division"
            );
        }
        for t in 1..=10u64 {
            assert!(
                !all.contains(&PacketId::Data(Seq(t))),
                "t{t} before the mark leaked into the division"
            );
        }
    }

    #[test]
    fn merge_keeps_unsent_work_and_faster_rate() {
        let mut cur = initial_assignment(20, 1, 2, 0, 1_000);
        cur.pos = 3;
        let unsent_first = cur.seq.get(3).cloned().unwrap();
        let incoming = TxSchedule {
            seq: PacketSeq::from_ids(vec![PacketId::Data(Seq(99))]).into(),
            pos: 0,
            interval_nanos: 500,
            first_delay_nanos: 500,
        };
        let merged = merge_assignment(&cur, &incoming);
        assert_eq!(
            merged.interval_nanos,
            harmonic_interval(cur.interval_nanos, 500)
        );
        assert_eq!(merged.pos, 0);
        assert!(merged.seq.contains(&unsent_first));
        assert!(merged.seq.contains(&PacketId::Data(Seq(99))));
        // Already-sent packets do not reappear.
        let sent0 = cur.seq.get(0).cloned().unwrap();
        if !cur.seq.to_seq().postfix_at(3).contains(&sent0) {
            assert!(!merged.seq.contains(&sent0));
        }
    }

    #[test]
    fn exhausted_and_remaining() {
        let mut s = initial_assignment(10, 1, 1, 0, 1_000);
        assert!(!s.exhausted());
        let len = s.seq.len();
        s.pos = len;
        assert!(s.exhausted());
        assert!(s.remaining().is_empty());
        assert_eq!(s.rate_pps(), 0.0);
        assert_eq!(TxSchedule::idle().rate_pps(), 0.0);
    }

    #[test]
    fn zero_and_max_intervals_both_read_as_idle() {
        // Regression: `0` used to mean "idle" to rate_pps but "use the
        // other rate" to harmonic_interval, while `u64::MAX` meant idle
        // to both. Both sentinels now read identically everywhere.
        for sentinel in [0u64, u64::MAX] {
            assert!(idle_interval(sentinel));
            let s = TxSchedule {
                seq: PacketSeq::data_range(4).into(),
                pos: 0,
                interval_nanos: sentinel,
                first_delay_nanos: 100,
            };
            assert_eq!(s.rate_pps(), 0.0, "sentinel {sentinel} must be idle");
            assert_eq!(harmonic_interval(sentinel, 700), 700);
            assert_eq!(harmonic_interval(700, sentinel), 700);
            assert_eq!(mark_position(10, sentinel, 5_000), 10);
            // Merging an idle assignment leaves the live rate unchanged.
            let live = initial_assignment(10, 1, 1, 0, 1_000);
            let merged = merge_assignment(&live, &s);
            assert_eq!(merged.interval_nanos, live.interval_nanos);
        }
        assert!(!idle_interval(1));
        assert_eq!(harmonic_interval(0, u64::MAX), u64::MAX);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn malformed_control_values_degrade_instead_of_panicking() {
        // Release builds clamp wire-supplied zeros rather than crash.
        assert_eq!(divided_interval(1_000, 0, 0), divided_interval(1_000, 1, 1));
        let s = weighted_initial_assignment(10, 1, &[1, 1], 7, 1_000, true, Coding::Xor);
        assert!(s.seq.is_empty(), "out-of-range index must idle the peer");
    }

    #[test]
    fn derivation_past_the_end_is_empty() {
        let parent = SeqView::from(PacketSeq::data_range(5));
        let s = derived_assignment(&parent, 5, 1_000, 10_000, 2, 2, 0, Reenhance::Nested);
        assert!(s.seq.is_empty());
    }

    #[test]
    fn basis_assign_matches_derived_assignment_everywhere() {
        // A shipped basis must hand every part exactly what that part
        // would have derived locally, or parent and children would
        // disagree on the division.
        let merged = {
            // An out-of-order parent schedule (multi-parent merge shape)
            // to exercise the DataOnly dedup-set path too.
            let a = initial_assignment(12, 2, 2, 0, 1_000);
            let b = initial_assignment(12, 2, 2, 1, 1_000);
            merge_assignment(&a, &b)
        };
        let parents = [
            SeqView::from(PacketSeq::data_range(30)),
            SeqView::from(enhance(&PacketSeq::data_range(17), 3, true, Coding::Xor)),
            // A strided parent too: divisions must compose.
            SeqView::part(std::sync::Arc::new(PacketSeq::data_range(29)), 3, 1),
            merged.seq.clone(),
            SeqView::empty(),
        ];
        for parent in &parents {
            for mode in [Reenhance::None, Reenhance::Nested, Reenhance::DataOnly] {
                for (pos, interval, delta) in [
                    (0, 1_000, 0),
                    (4, 1_000, 6_000),
                    (40, 1_000, 0),
                    (0, u64::MAX, 5_000),
                ] {
                    let parts = 3;
                    let basis = DivisionBasis::derive(
                        parent,
                        pos,
                        interval,
                        delta,
                        2,
                        mode,
                        true,
                        Coding::Xor,
                    );
                    for part in 0..parts {
                        let direct = derived_assignment_opts(
                            parent,
                            pos,
                            interval,
                            delta,
                            2,
                            parts,
                            part,
                            mode,
                            true,
                            Coding::Xor,
                        );
                        let via_basis = basis.assign(parts, part);
                        assert_eq!(via_basis.seq, direct.seq, "{mode:?} part {part}");
                        assert_eq!(via_basis.interval_nanos, direct.interval_nanos);
                        assert_eq!(via_basis.first_delay_nanos, direct.first_delay_nanos);
                        assert_eq!(via_basis.pos, direct.pos);
                    }
                }
            }
        }
    }

    #[test]
    fn merge_is_union_of_unsent_and_incoming() {
        // The slice-based merge must produce exactly
        // remaining() ∪ incoming, duplicates collapsed, order stable.
        let mut cur = initial_assignment(20, 2, 2, 0, 1_000);
        cur.pos = 5;
        let incoming = initial_assignment(20, 2, 2, 1, 1_000);
        let merged = merge_assignment(&cur, &incoming);
        let mut reference = cur.remaining();
        reference.merge_into(&incoming.seq.to_seq());
        assert_eq!(merged.seq.to_seq(), reference);
        // Membership queries must work on the merged seq.
        for id in reference.ids() {
            assert!(merged.seq.contains(id));
        }
    }

    #[test]
    fn merge_of_strided_views_matches_materialized_union() {
        // Both operands strided (the protocol's common case: two parts of
        // different fan-outs), partially sent — the iterator union must
        // equal the slice union over the materialized sequences.
        let basis_a = DivisionBasis::new(
            Arc::new(enhance(&PacketSeq::data_range(23), 2, true, Coding::Xor)),
            700,
        );
        let basis_b = DivisionBasis::new(
            Arc::new(enhance(&PacketSeq::data_range(31), 3, true, Coding::Xor)),
            900,
        );
        for (pa, pb) in [(0, 0), (1, 2), (2, 1)] {
            let mut cur = basis_a.assign(3, pa);
            cur.pos = 2;
            let inc = basis_b.assign(3, pb);
            let merged = merge_assignment(&cur, &inc);
            let expect = PacketSeq::union_slices(
                cur.seq.to_seq().ids().get(2..).unwrap_or(&[]),
                inc.seq.to_seq().ids(),
            );
            assert_eq!(merged.seq.to_seq(), expect, "parts {pa}/{pb}");
        }
    }
}
