//! Protocol-plane hosting: all `n` contents peers of a session as one
//! flat [`ActorGroup`] with shared round scratch.
//!
//! The seed stored each peer as its own boxed `dyn Actor`, so every
//! round paid a virtual dispatch per message plus per-peer allocation of
//! the selection pool, the fan-out's message list, and the enhanced
//! content sequence. A [`Plane`] keeps the peers in one dense `Vec`
//! indexed by [`mss_overlay::PeerId`] (the directory maps ids densely,
//! so `member == peer.0`) and threads one [`RoundShared`] scratch arena
//! through every handler call. Scratch contents never influence handler
//! behavior — buffers are cleared or overwritten before use, the
//! enhance cache is pure memoization, and the delta tracker only picks
//! a view's wire encoding — so a plane-hosted session is bit-for-bit
//! identical to solo-hosted actors (the session equivalence tests pin
//! this).

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use mss_media::parity::{enhance, Coding};
use mss_media::PacketSeq;
use mss_overlay::{PeerId, View};
use mss_sim::event::ActorId;
use mss_sim::prelude::*;
use mss_sim::world::ActorGroup;

use crate::msg::{ControlPacket, Msg};

/// Memoized enhanced full-content sequence (the initial division's
/// input): identical for every part of one leaf request.
struct InitEntry {
    packets: u64,
    h: usize,
    tail_parity: bool,
    coding: Coding,
    enhanced: Arc<PacketSeq>,
}

/// Per-round scratch shared by every peer of a plane (or owned by a
/// single solo-hosted peer). Reuse is an allocation amortization only:
/// nothing here influences *protocol* behavior between handler
/// invocations except the pure [`RoundShared::enhanced_content`] memo —
/// the [`DeltaTracker`] carries state across calls, but it only selects
/// the wire encoding of a view (`ViewWire`), never what any handler
/// decides.
#[derive(Default)]
pub struct RoundShared {
    /// Selection-pool scratch for `Select` — cleared by every draw.
    pub pool: Vec<PeerId>,
    /// Fan-out staging for batched round delivery: handlers push their
    /// whole fan-out here, then drain it through
    /// [`crate::peer_core::Core::send_coord_batch`].
    pub outbox: Vec<(ActorId, Msg)>,
    /// Sender-side per-edge view snapshots backing delta piggybacks.
    pub delta: DeltaTracker,
    /// Free-list of control-payload boxes (see [`CtlPool`]).
    pub ctl: CtlPool,
    init_cache: Option<InitEntry>,
}

/// Free-list of `Box<ControlPacket>` shells, so the slim-`Msg` layout's
/// boxed control payloads do not cost one malloc/free pair per
/// coordination message. A plane hosts both ends of most edges, so a
/// box drained at the receiver ([`CtlPool::recycle`]) is handed back
/// for the next sender-side [`CtlPool::wrap`]; steady-state rounds recycle
/// a handful of shells instead of hitting the allocator per message.
///
/// Pure allocation reuse: the payload is overwritten whole on `wrap`,
/// so pooled and fresh boxes are indistinguishable to handlers (the
/// plane-equivalence suites pin this). Capacity is bounded so a burst
/// cannot pin memory.
#[derive(Default)]
pub struct CtlPool {
    // The boxes are the point: this list recycles the heap shells
    // themselves, so `vec_box`'s "unbox it" advice would defeat it.
    #[allow(clippy::vec_box)]
    free: Vec<Box<ControlPacket>>,
}

impl CtlPool {
    /// Shells kept at most: enough for every in-flight control of a
    /// round's fan-out without letting a burst pin memory.
    const CAP: usize = 64;

    /// Wrap `c` as a control message, reusing a recycled shell when one
    /// is free (falls back to a fresh allocation otherwise).
    pub fn wrap(&mut self, c: ControlPacket) -> Msg {
        match self.free.pop() {
            Some(mut shell) => {
                *shell = c;
                Msg::Control(shell)
            }
            None => Msg::control(c),
        }
    }

    /// Keep a drained control box for the next [`CtlPool::wrap`]. The
    /// shell's payload stays in place until `wrap` overwrites it (at
    /// most [`CtlPool::CAP`] stale payloads are pinned) — receivers
    /// read the packet by reference, so nothing needs moving out.
    pub fn recycle(&mut self, boxed: Box<ControlPacket>) {
        if self.free.len() < CtlPool::CAP {
            self.free.push(boxed);
        }
    }
}

/// Tracks, per directed parent→child edge, the last full view the
/// parent shipped, so a follow-up on the same edge (TCoP's probe →
/// commit) can carry only the ids gained since — the delta piggyback.
///
/// Epochs stamp full frames so receivers pair a delta with the right
/// snapshot. An edge's entry is consumed by [`DeltaTracker::take`]
/// (commit sent, or the probe was refused), so epochs can restart after
/// a later re-probe; that is safe because the receiver additionally
/// checks the snapshot's cardinality, and two snapshots of one
/// grow-only view with equal cardinality are the same set.
#[derive(Default)]
pub struct DeltaTracker {
    edges: HashMap<u64, (u32, Arc<View>)>,
}

impl DeltaTracker {
    fn key(from: PeerId, to: PeerId) -> u64 {
        (u64::from(from.0) << 32) | u64::from(to.0)
    }

    /// Record that `from` is shipping `view` in full to `to`; returns
    /// the epoch to stamp on the frame.
    pub fn record_full(&mut self, from: PeerId, to: PeerId, view: &Arc<View>) -> u32 {
        let k = DeltaTracker::key(from, to);
        let epoch = self.edges.get(&k).map_or(1, |(e, _)| e.wrapping_add(1));
        self.edges.insert(k, (epoch, Arc::clone(view)));
        epoch
    }

    /// Consume the edge's snapshot for a delta follow-up (or to drop a
    /// refused edge). Returns the stamped epoch and the snapshot view.
    pub fn take(&mut self, from: PeerId, to: PeerId) -> Option<(u32, Arc<View>)> {
        self.edges.remove(&DeltaTracker::key(from, to))
    }

    /// Number of tracked edges (tests and memory accounting).
    pub fn tracked_edges(&self) -> usize {
        self.edges.len()
    }
}

impl RoundShared {
    /// The enhanced sequence of the full content — `Esq([pkt], h)` over
    /// `data_range(packets)` — memoized on its inputs. Every peer an
    /// initial division touches computes this identical sequence; one
    /// plane computes it once.
    pub fn enhanced_content(
        &mut self,
        packets: u64,
        h: usize,
        tail_parity: bool,
        coding: Coding,
    ) -> Arc<PacketSeq> {
        match &self.init_cache {
            Some(e)
                if e.packets == packets
                    && e.h == h
                    && e.tail_parity == tail_parity
                    && e.coding == coding =>
            {
                e.enhanced.clone()
            }
            _ => {
                let enhanced = Arc::new(enhance(
                    &PacketSeq::data_range(packets),
                    h,
                    tail_parity,
                    coding,
                ));
                self.init_cache = Some(InitEntry {
                    packets,
                    h,
                    tail_parity,
                    coding,
                    enhanced: enhanced.clone(),
                });
                enhanced
            }
        }
    }
}

/// A peer hostable inside a [`Plane`]: the protocol handlers with the
/// shared scratch threaded in explicitly. Solo hosting wraps these same
/// handlers around a peer-owned [`RoundShared`].
pub trait PlanePeer: Send + 'static {
    /// Deliver one message.
    fn plane_message(
        &mut self,
        ctx: &mut dyn Runtime<Msg>,
        shared: &mut RoundShared,
        from: ActorId,
        msg: Msg,
    );
    /// Fire one timer.
    fn plane_timer(
        &mut self,
        ctx: &mut dyn Runtime<Msg>,
        shared: &mut RoundShared,
        timer: TimerId,
        tag: u64,
    );
}

/// Dense slab of one session's contents peers plus their shared round
/// scratch, hosted as a single [`ActorGroup`].
pub struct Plane<P: PlanePeer> {
    members: Vec<P>,
    shared: RoundShared,
}

impl<P: PlanePeer> Plane<P> {
    /// Plane over `members`, indexed by their dense peer ids.
    pub fn new(members: Vec<P>) -> Plane<P> {
        Plane {
            members,
            shared: RoundShared::default(),
        }
    }
}

impl<P: PlanePeer> ActorGroup<Msg> for Plane<P> {
    fn on_message(&mut self, ctx: &mut dyn Runtime<Msg>, member: u32, from: ActorId, msg: Msg) {
        self.members[member as usize].plane_message(ctx, &mut self.shared, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<Msg>, member: u32, timer: TimerId, tag: u64) {
        self.members[member as usize].plane_timer(ctx, &mut self.shared, timer, tag);
    }

    fn member_as_any(&self, member: u32) -> &dyn Any {
        &self.members[member as usize]
    }
}
