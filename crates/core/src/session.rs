//! Session builder and runner: the crate's main entry point.
//!
//! A [`Session`] wires a leaf and `n` contents peers of the chosen
//! [`Protocol`] into an [`mss_sim`] world, optionally injects crash-stop
//! faults, runs to quiescence, and distills a [`SessionOutcome`] — the
//! row format of every figure in the paper's evaluation.
//!
//! ```
//! use mss_core::prelude::*;
//!
//! let cfg = SessionConfig::small(10, 3, 42);
//! let outcome = Session::new(cfg, Protocol::Dcop).run();
//! assert_eq!(outcome.activated, 10);
//! assert!(outcome.complete);
//! ```

use std::sync::Arc;

use mss_media::buffer::OverrunGate;
use mss_overlay::{Directory, PeerId};
use mss_sim::event::ActorId;
use mss_sim::link::{JitterLatency, LinkModel};
use mss_sim::prelude::*;
use mss_sim::shard::ShardedWorld;
use mss_sim::world::World;

use crate::baselines::{BroadcastPeer, CentralizedPeer, SchedulePeer};
use crate::config::{Protocol, SessionConfig};
use crate::dcop::DcopPeer;
use crate::leaf::LeafActor;
use crate::metrics as mnames;
use crate::metrics::SessionOutcome;
use crate::msg::Msg;
use crate::peer_core::PeerReport;
use crate::plane::Plane;
use crate::tcop::TcopPeer;

/// Crash-stop fault injector: kills listed peers at listed times.
struct FaultInjector {
    faults: Vec<(SimDuration, ActorId)>,
}

impl Actor<Msg> for FaultInjector {
    fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
        for (i, (at, _)) in self.faults.iter().enumerate() {
            ctx.set_timer(*at, i as u64);
        }
    }
    fn on_message(&mut self, _: &mut dyn Runtime<Msg>, _: ActorId, _: Msg) {}
    fn on_timer(&mut self, ctx: &mut dyn Runtime<Msg>, _: TimerId, tag: u64) {
        let (_, target) = self.faults[tag as usize];
        ctx.kill(target);
    }
    mss_sim::impl_as_any!();
}

/// How the session's contents peers are hosted in the world.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hosting {
    /// All peers of the protocol in one flat [`Plane`] group sharing
    /// round scratch (see [`crate::plane`]) — the default for the
    /// protocols that support it. Bit-for-bit identical to [`Solo`](Hosting::Solo).
    Plane,
    /// One boxed actor per peer (the seed layout). Baselines always use
    /// this.
    Solo,
}

/// How a session obtains its link model. A plain instance is enough for
/// the single world; the sharded world needs one instance *per shard*
/// (so link state stays thread-local), hence the factory form. The
/// default link is stateless and supports both.
enum LinkSpec {
    /// The built-in 1–2 ms jitter link.
    Default,
    /// A caller-supplied instance ([`Session::link`]): single-world only.
    Instance(Box<dyn LinkModel>),
    /// A caller-supplied per-shard constructor ([`Session::link_factory`]).
    Factory(Box<dyn Fn() -> Box<dyn LinkModel + Send>>),
}

fn default_link() -> JitterLatency {
    JitterLatency {
        base: SimDuration::from_millis(1),
        jitter: SimDuration::from_millis(1),
    }
}

impl LinkSpec {
    /// The link instance for a single-world run (bit-for-bit the link
    /// the seed used, for every spec form).
    fn build_single(self) -> Box<dyn LinkModel> {
        match self {
            LinkSpec::Default => Box::new(default_link()),
            LinkSpec::Instance(link) => link,
            LinkSpec::Factory(f) => f(),
        }
    }

    /// Per-shard link constructor, or the spec handed back untouched
    /// when it cannot run sharded (an opaque instance, or a model with
    /// zero lookahead) so a single-world fallback keeps the user's link.
    fn build_factory(self) -> Result<Box<dyn Fn() -> Box<dyn LinkModel + Send>>, LinkSpec> {
        let f: Box<dyn Fn() -> Box<dyn LinkModel + Send>> = match self {
            LinkSpec::Default => Box::new(|| Box::new(default_link())),
            spec @ LinkSpec::Instance(_) => return Err(spec),
            LinkSpec::Factory(f) => f,
        };
        if f().min_latency() > SimDuration::ZERO {
            Ok(f)
        } else {
            Err(LinkSpec::Factory(f))
        }
    }
}

/// Builder for one streaming session.
pub struct Session {
    cfg: SessionConfig,
    protocol: Protocol,
    link: LinkSpec,
    gate: Option<OverrunGate>,
    faults: Vec<(SimDuration, PeerId)>,
    limit: SimTime,
    hosting: Hosting,
    shards: usize,
}

impl Session {
    /// A session with the default link: 1–2 ms one-way latency (the
    /// paper's "reliable high-speed" channels, with enough jitter that
    /// concurrent probes do not arrive in artificial lockstep).
    pub fn new(cfg: SessionConfig, protocol: Protocol) -> Session {
        cfg.validate();
        let mut cfg = cfg;
        if protocol == Protocol::Unicast {
            // The unicast chain is DCoP with fan-out 1.
            cfg.fanout = 1;
        }
        Session {
            cfg,
            protocol,
            link: LinkSpec::Default,
            gate: None,
            faults: Vec::new(),
            limit: SimTime::MAX,
            hosting: Hosting::Plane,
            shards: 1,
        }
    }

    /// Replace the network model with a single instance. A session built
    /// this way always runs in the single-threaded world (the instance
    /// cannot be replicated per shard); use [`Session::link_factory`]
    /// for sharded runs.
    pub fn link(mut self, link: impl LinkModel + 'static) -> Session {
        self.link = LinkSpec::Instance(Box::new(link));
        self
    }

    /// Replace the network model with a per-shard constructor. Every
    /// shard of a sharded run gets its own instance, so stateful models
    /// stay thread-local; a single-world run calls it once. The model's
    /// [`LinkModel::min_latency`] must be positive for sharded execution
    /// (it becomes the synchronization lookahead).
    pub fn link_factory<L: LinkModel + Send + 'static>(
        mut self,
        factory: impl Fn() -> L + 'static,
    ) -> Session {
        self.link = LinkSpec::Factory(Box::new(move || Box::new(factory())));
        self
    }

    /// Split the session across `shards` worker threads (1 = the
    /// classic single-threaded world, the default). Sharded runs are
    /// deterministic per `(seed, shards)` pair but not stream-identical
    /// across different shard counts; `run()` falls back to the single
    /// world when the link cannot be sharded (see [`Session::link`]).
    pub fn shards(mut self, shards: usize) -> Session {
        self.shards = shards.max(1);
        self
    }

    /// Host the peers as solo actors or as one plane group (protocols
    /// without a plane implementation ignore this and stay solo).
    pub fn hosting(mut self, hosting: Hosting) -> Session {
        self.hosting = hosting;
        self
    }

    /// Bound the leaf's receipt rate `ρ_s` with an overrun gate.
    pub fn gate(mut self, gate: OverrunGate) -> Session {
        self.gate = Some(gate);
        self
    }

    /// Crash contents peer `peer` at time `at`.
    pub fn fault(mut self, at: SimDuration, peer: PeerId) -> Session {
        self.faults.push((at, peer));
        self
    }

    /// Stop the simulation at `limit` even if events remain.
    pub fn time_limit(mut self, limit: SimDuration) -> Session {
        self.limit = SimTime::ZERO + limit;
        self
    }

    /// Run to quiescence and summarize. Dispatches to the sharded world
    /// when more than one shard was requested and the link supports it,
    /// and to the classic single-threaded world otherwise — so existing
    /// callers keep the bit-for-bit single-world event stream.
    pub fn run(self) -> SessionOutcome {
        if self.shards > 1 {
            match self.try_sharded() {
                Ok(run) => return run.0,
                Err(single) => return single.run_with_world().0,
            }
        }
        self.run_with_world().0
    }

    /// Run and also hand back the world for deeper inspection. Always
    /// uses the single-threaded world (ignoring [`Session::shards`]);
    /// use [`Session::run_with_sharded_world`] for the parallel kernel.
    pub fn run_with_world(self) -> (SessionOutcome, World<Msg>, Vec<PeerReport>) {
        let Session {
            cfg,
            protocol,
            link,
            gate,
            faults,
            limit,
            hosting,
            shards: _,
        } = self;
        let link = link.build_single();
        let mut world: World<Msg> = World::new(link, cfg.seed);
        let n = cfg.n;
        // Each data packet is at least one send + one delivery event, plus
        // per-peer timer churn; pre-reserving avoids repeated heap growth
        // in the event queue during the streaming phase.
        world.reserve_events(cfg.content.packets as usize * 2 + n * 8);
        let dir = Arc::new(Directory::new(
            (0..n as u32).map(ActorId).collect(),
            ActorId(n as u32),
        ));
        let peers = dir.peers();
        match (hosting, protocol) {
            (Hosting::Plane, Protocol::Dcop | Protocol::Unicast) => {
                let members: Vec<DcopPeer> = peers
                    .map(|me| DcopPeer::new(me, dir.clone(), cfg.clone()))
                    .collect();
                let first = world.add_group(n, Box::new(Plane::new(members)));
                debug_assert_eq!(first, dir.actor_of(PeerId(0)));
            }
            (Hosting::Plane, Protocol::Tcop) => {
                let members: Vec<TcopPeer> = peers
                    .map(|me| TcopPeer::new(me, dir.clone(), cfg.clone()))
                    .collect();
                let first = world.add_group(n, Box::new(Plane::new(members)));
                debug_assert_eq!(first, dir.actor_of(PeerId(0)));
            }
            _ => {
                for me in peers {
                    let id = world.add_actor(make_peer(protocol, me, dir.clone(), cfg.clone()));
                    debug_assert_eq!(id, dir.actor_of(me));
                }
            }
        }
        let leaf_id = world.add_actor(Box::new(LeafActor::new(
            cfg.clone(),
            protocol,
            dir.clone(),
            gate,
        )));
        debug_assert_eq!(leaf_id, dir.leaf());
        if !faults.is_empty() {
            let faults = faults
                .iter()
                .map(|(at, p)| (*at, dir.actor_of(*p)))
                .collect();
            world.add_actor(Box::new(FaultInjector { faults }));
        }
        if std::env::var_os("MSS_TRACE").is_some() {
            world.set_trace(true);
        }
        world.run_until(limit);

        let reports = peer_reports(&world, protocol, &dir);
        let outcome = summarize(&world, protocol, &cfg, &dir, &reports);
        (outcome, world, reports)
    }

    /// Sharded run if the link supports it, or the session handed back
    /// for a single-world fallback.
    fn try_sharded(
        mut self,
    ) -> Result<(SessionOutcome, ShardedWorld<Msg>, Vec<PeerReport>), Box<Session>> {
        match std::mem::replace(&mut self.link, LinkSpec::Default).build_factory() {
            Ok(f) => {
                self.link = LinkSpec::Factory(f);
                Ok(self.run_with_sharded_world())
            }
            Err(spec) => {
                self.link = spec;
                Err(Box::new(self))
            }
        }
    }

    /// Run on the sharded parallel kernel and hand back the sharded
    /// world for deeper inspection.
    ///
    /// Peers are block-partitioned into contiguous id ranges, one
    /// [`Plane`] slab (or solo-actor range) per shard; the leaf and the
    /// fault injector live on shard 0. The synchronization lookahead is
    /// the link model's [`LinkModel::min_latency`].
    ///
    /// # Panics
    /// If the session's link was set with [`Session::link`] (an
    /// un-replicable instance) or has zero minimum latency — build it
    /// with [`Session::link_factory`] instead.
    pub fn run_with_sharded_world(self) -> (SessionOutcome, ShardedWorld<Msg>, Vec<PeerReport>) {
        let Session {
            cfg,
            protocol,
            link,
            gate,
            faults,
            limit,
            hosting,
            shards,
        } = self;
        let n = cfg.n;
        let shards = shards.clamp(1, n.max(1));
        let factory: Box<dyn Fn() -> Box<dyn LinkModel + Send>> = match link {
            LinkSpec::Instance(_) => panic!(
                "a sharded session needs a per-shard link: use Session::link_factory \
                 (Session::link instances cannot be replicated across shards)"
            ),
            LinkSpec::Default => Box::new(|| Box::new(default_link())),
            LinkSpec::Factory(f) => f,
        };
        let lookahead = factory().min_latency();
        assert!(
            shards == 1 || lookahead > SimDuration::ZERO,
            "sharded session link has zero min_latency — no conservative lookahead exists"
        );
        let mut world: ShardedWorld<Msg> =
            ShardedWorld::new(shards, lookahead, cfg.seed, |_k| factory());
        world.reserve_events(cfg.content.packets as usize * 2 + n * 8);
        let dir = Arc::new(Directory::new(
            (0..n as u32).map(ActorId).collect(),
            ActorId(n as u32),
        ));
        // Contiguous block partition: shard k hosts peers
        // [starts[k], starts[k+1]); global ids stay dense because the
        // blocks are registered in ascending order.
        let starts = shard_blocks(n, shards);
        for k in 0..shards {
            let block = starts[k]..starts[k + 1];
            if block.is_empty() {
                continue;
            }
            let members = block.clone().map(|p| PeerId(p as u32));
            match (hosting, protocol) {
                (Hosting::Plane, Protocol::Dcop | Protocol::Unicast) => {
                    let members: Vec<DcopPeer> = members
                        .map(|me| DcopPeer::new(me, dir.clone(), cfg.clone()))
                        .collect();
                    let first = world.add_group(k, block.len(), Box::new(Plane::new(members)));
                    debug_assert_eq!(first, dir.actor_of(PeerId(block.start as u32)));
                }
                (Hosting::Plane, Protocol::Tcop) => {
                    let members: Vec<TcopPeer> = members
                        .map(|me| TcopPeer::new(me, dir.clone(), cfg.clone()))
                        .collect();
                    let first = world.add_group(k, block.len(), Box::new(Plane::new(members)));
                    debug_assert_eq!(first, dir.actor_of(PeerId(block.start as u32)));
                }
                _ => {
                    for me in members {
                        let id =
                            world.add_actor(k, make_peer(protocol, me, dir.clone(), cfg.clone()));
                        debug_assert_eq!(id, dir.actor_of(me));
                    }
                }
            }
        }
        let leaf_id = world.add_actor(
            0,
            Box::new(LeafActor::new(cfg.clone(), protocol, dir.clone(), gate)),
        );
        debug_assert_eq!(leaf_id, dir.leaf());
        if !faults.is_empty() {
            let faults = faults
                .iter()
                .map(|(at, p)| (*at, dir.actor_of(*p)))
                .collect();
            world.add_actor(0, Box::new(FaultInjector { faults }));
        }
        world.run_until(limit);

        let reports = sharded_peer_reports(&world, protocol, &dir);
        let leaf: &LeafActor = world.actor_as(dir.leaf()).expect("leaf actor");
        let outcome = summarize_parts(world.metrics(), leaf, protocol, &cfg, &reports);
        (outcome, world, reports)
    }
}

/// Block-partition `n` peers over `shards` shards: `shards + 1` range
/// starts, the first `n % shards` blocks one peer larger so sizes never
/// differ by more than one.
pub fn shard_blocks(n: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let (base, extra) = (n / shards, n % shards);
    let mut starts = Vec::with_capacity(shards + 1);
    let mut at = 0;
    starts.push(0);
    for k in 0..shards {
        at += base + usize::from(k < extra);
        starts.push(at);
    }
    starts
}

/// Downcast a hosted contents peer (behind its [`std::any::Any`] face,
/// whether solo- or plane-hosted) to its report.
pub fn report_from_any(any: &dyn std::any::Any, protocol: Protocol) -> Option<PeerReport> {
    match protocol {
        Protocol::Dcop | Protocol::Unicast => any.downcast_ref::<DcopPeer>().map(|p| p.report()),
        Protocol::Tcop => any.downcast_ref::<TcopPeer>().map(|p| p.report()),
        Protocol::Broadcast => any.downcast_ref::<BroadcastPeer>().map(|p| p.report()),
        Protocol::Centralized => any.downcast_ref::<CentralizedPeer>().map(|p| p.report()),
        Protocol::LeafSchedule => any.downcast_ref::<SchedulePeer>().map(|p| p.report()),
    }
}

/// Downcast any hosted contents-peer actor to its report (works for the
/// simulator and for the live runtimes in `mss-net`).
pub fn report_of(actor: &dyn Actor<Msg>, protocol: Protocol) -> Option<PeerReport> {
    report_from_any(actor.as_any(), protocol)
}

/// Construct a contents-peer actor of the given protocol (shared by the
/// simulator session builder and the live runtimes).
pub fn make_peer(
    protocol: Protocol,
    me: PeerId,
    dir: impl Into<Arc<Directory>>,
    cfg: SessionConfig,
) -> Box<dyn Actor<Msg>> {
    let dir = dir.into();
    match protocol {
        Protocol::Dcop | Protocol::Unicast => Box::new(DcopPeer::new(me, dir, cfg)),
        Protocol::Tcop => Box::new(TcopPeer::new(me, dir, cfg)),
        Protocol::Broadcast => Box::new(BroadcastPeer::new(me, dir, cfg)),
        Protocol::Centralized => Box::new(CentralizedPeer::new(me, dir, cfg)),
        Protocol::LeafSchedule => Box::new(SchedulePeer::new(me, dir, cfg)),
    }
}

/// Extract every contents peer's report from a finished world.
pub fn peer_reports(world: &World<Msg>, protocol: Protocol, dir: &Directory) -> Vec<PeerReport> {
    dir.peers()
        .map(|p| {
            let id = dir.actor_of(p);
            world
                .actor_any(id)
                .and_then(|a| report_from_any(a, protocol))
                .expect("peer type")
        })
        .collect()
}

/// Extract every contents peer's report from a finished sharded world.
pub fn sharded_peer_reports(
    world: &ShardedWorld<Msg>,
    protocol: Protocol,
    dir: &Directory,
) -> Vec<PeerReport> {
    dir.peers()
        .map(|p| {
            let id = dir.actor_of(p);
            world
                .actor_any(id)
                .and_then(|a| report_from_any(a, protocol))
                .expect("peer type")
        })
        .collect()
}

/// The paper's round counting per protocol (see crate docs for the
/// interpretation): activation waves for the flooding protocols, three
/// rounds per probe wave for TCoP, the fixed 2PC count for the
/// centralized baseline.
pub fn rounds_of(world: &World<Msg>, protocol: Protocol) -> u32 {
    rounds_of_metrics(world.metrics(), protocol)
}

/// [`rounds_of`] over a bare metrics sink (shared by the single and the
/// sharded world).
pub fn rounds_of_metrics(m: &Metrics, protocol: Protocol) -> u32 {
    match protocol {
        Protocol::Tcop => {
            let probe_waves = m.counter(mnames::COORD_PROBE_WAVES_AT_ACTIVATION) as u32;
            if probe_waves == 0 {
                m.counter(mnames::COORD_MAX_WAVE) as u32
            } else {
                3 * probe_waves
            }
        }
        Protocol::Centralized => m.counter(mnames::COORD_FIXED_ROUNDS) as u32,
        _ => m.counter(mnames::COORD_MAX_WAVE) as u32,
    }
}

fn summarize(
    world: &World<Msg>,
    protocol: Protocol,
    cfg: &SessionConfig,
    dir: &Directory,
    reports: &[PeerReport],
) -> SessionOutcome {
    let leaf: &LeafActor = world.actor_as(dir.leaf()).expect("leaf actor");
    summarize_parts(world.metrics(), leaf, protocol, cfg, reports)
}

/// Distill the outcome from the pieces both kernels produce: the merged
/// metrics, the finished leaf, and the peer reports.
fn summarize_parts(
    m: &Metrics,
    leaf: &LeafActor,
    protocol: Protocol,
    cfg: &SessionConfig,
    reports: &[PeerReport],
) -> SessionOutcome {
    let packet_bits = (cfg.content.packet_bytes * 8) as f64;
    let analytic_bps: f64 = reports
        .iter()
        .filter(|r| r.active && r.interval_nanos != u64::MAX && r.interval_nanos > 0)
        .map(|r| 1e9 / r.interval_nanos as f64 * packet_bits)
        .sum();
    SessionOutcome {
        protocol,
        n: cfg.n,
        fanout: cfg.fanout,
        rounds: rounds_of_metrics(m, protocol),
        coord_msgs_until_active: m.counter(mnames::COORD_MSGS_AT_ACTIVATION),
        coord_msgs_total: m.counter(mnames::COORD_MSGS),
        coord_bytes: m.counter(mnames::COORD_BYTES),
        coord_bytes_tx: m.counter(mnames::COORD_BYTES_TX),
        coord_bytes_full: m.counter(mnames::COORD_BYTES_FULL),
        activated: m.counter(mnames::COORD_ACTIVATIONS),
        sync_nanos: m.counter(mnames::COORD_LAST_ACTIVATION_NANOS),
        receipt_rate_analytic: analytic_bps / cfg.content.rate_bps as f64,
        receipt_rate_measured: leaf
            .measured_bps()
            .map(|bps| bps / cfg.content.rate_bps as f64),
        receipt_volume_ratio: leaf.received_bytes() as f64
            / (cfg.content.packets as f64 * cfg.content.packet_bytes as f64),
        leaf_accepted: leaf.accepted(),
        leaf_duplicates: leaf.duplicates(),
        leaf_overruns: leaf.overruns(),
        complete: leaf.is_complete(),
        complete_nanos: leaf.complete_nanos(),
        recovered_via_parity: leaf.recovered(),
        leaf_missing: leaf.missing_count() as u64,
        data_msgs: m.counter(mnames::DATA_MSGS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcop_small_session_covers_and_completes() {
        let cfg = SessionConfig::small(10, 3, 42);
        let outcome = Session::new(cfg, Protocol::Dcop).run();
        assert_eq!(outcome.activated, 10, "every peer must activate");
        assert!(outcome.complete, "leaf must reconstruct the content");
        assert!(outcome.rounds >= 2, "10 peers at H=3 need several waves");
        assert!(outcome.coord_msgs_until_active >= 10 - 3);
    }

    #[test]
    fn dcop_is_deterministic_per_seed() {
        let a = Session::new(SessionConfig::small(20, 4, 7), Protocol::Dcop).run();
        let b = Session::new(SessionConfig::small(20, 4, 7), Protocol::Dcop).run();
        assert_eq!(a.coord_msgs_total, b.coord_msgs_total);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.sync_nanos, b.sync_nanos);
        let c = Session::new(SessionConfig::small(20, 4, 8), Protocol::Dcop).run();
        // A different seed gives a different random structure (message
        // totals may coincide, times almost never do).
        assert!(
            c.sync_nanos != a.sync_nanos || c.coord_msgs_total != a.coord_msgs_total,
            "different seeds produced identical runs"
        );
    }

    #[test]
    fn tcop_small_session_covers_and_completes() {
        let cfg = SessionConfig::small(10, 3, 42);
        let outcome = Session::new(cfg, Protocol::Tcop).run();
        assert_eq!(outcome.activated, 10);
        assert!(outcome.complete);
        assert_eq!(outcome.rounds % 3, 0, "TCoP rounds come in threes");
    }

    #[test]
    fn tcop_children_have_unique_parents() {
        let cfg = SessionConfig::small(12, 3, 5);
        let (outcome, world, _) = Session::new(cfg, Protocol::Tcop).run_with_world();
        assert_eq!(outcome.activated, 12);
        for i in 0..12u32 {
            let p: &TcopPeer = world.actor_as(ActorId(i)).unwrap();
            assert!(p.has_parent(), "CP{} never claimed", i + 1);
        }
    }

    #[test]
    fn all_protocols_cover_and_complete() {
        for protocol in Protocol::ALL {
            let cfg = SessionConfig::small(8, 3, 11);
            let outcome = Session::new(cfg, protocol).run();
            assert_eq!(outcome.activated, 8, "{}", protocol.name());
            assert!(outcome.complete, "{} failed to stream", protocol.name());
            assert!(outcome.rounds >= 1, "{}", protocol.name());
        }
    }

    #[test]
    fn unicast_takes_many_rounds_few_messages() {
        let cfg = SessionConfig::small(10, 3, 3);
        let outcome = Session::new(cfg, Protocol::Unicast).run();
        assert_eq!(outcome.activated, 10);
        assert_eq!(outcome.rounds, 10, "the chain activates one peer per wave");
        assert!(outcome.coord_msgs_until_active <= 2 * 10);
    }

    #[test]
    fn centralized_is_three_rounds() {
        let cfg = SessionConfig::small(10, 3, 3);
        let outcome = Session::new(cfg, Protocol::Centralized).run();
        assert_eq!(outcome.rounds, 3);
        // 1 request + (n-1) prepares + (n-1) votes + (n-1) decisions.
        assert_eq!(outcome.coord_msgs_total, 1 + 3 * 9);
    }

    #[test]
    fn leaf_schedule_is_one_round_n_messages() {
        let cfg = SessionConfig::small(10, 3, 3);
        let outcome = Session::new(cfg, Protocol::LeafSchedule).run();
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.coord_msgs_total, 10);
        assert!(outcome.complete);
    }

    #[test]
    fn broadcast_is_one_round_n_squared_messages() {
        let cfg = SessionConfig::small(10, 3, 3);
        let outcome = Session::new(cfg, Protocol::Broadcast).run();
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.coord_msgs_total, 10 + 10 * 9);
        assert!(outcome.complete);
        assert!(
            outcome.leaf_duplicates > 0,
            "the redundant phase must produce duplicates"
        );
    }

    #[test]
    fn dcop_survives_peer_crashes_with_parity() {
        // h = H - 1 = 3: one whole peer per division may vanish.
        let mut cfg = SessionConfig::small(8, 4, 19);
        cfg.parity_interval = 3;
        let outcome = Session::new(cfg, Protocol::Dcop)
            .fault(SimDuration::from_millis(300), PeerId(2))
            .run();
        assert!(
            outcome.complete,
            "leaf failed to reconstruct despite parity (missing data)"
        );
        assert!(outcome.recovered_via_parity > 0, "parity never exercised");
    }

    #[test]
    fn outcome_rates_are_plausible() {
        let cfg = SessionConfig::small(10, 3, 42);
        let outcome = Session::new(cfg, Protocol::Dcop).run();
        // Receipt rate must exceed the content rate (parity overhead) but
        // stay within a small factor for a shallow tree.
        let r = outcome.receipt_rate_analytic;
        assert!(r > 1.0, "analytic rate {r} missing parity overhead");
        assert!(r < 4.0, "analytic rate {r} implausibly high");
    }
}
