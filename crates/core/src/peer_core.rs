//! Shared contents-peer machinery: activation bookkeeping, data-plane
//! streaming, deferred schedule switching, and child selection.
//!
//! Every protocol's peer actor embeds a [`Core`] and drives it from its
//! message handlers; the `Core` owns everything that is identical across
//! DCoP, TCoP and the baselines.

use std::sync::Arc;

use mss_media::ContentDesc;
use mss_overlay::select::{select_from_complement, select_from_complement_with};
use mss_overlay::{Directory, PeerId, View};
use mss_sim::prelude::*;

use crate::config::{Piggyback, SessionConfig};
use crate::metrics as mnames;
use crate::msg::{ContentRequest, Msg};
use crate::plane::RoundShared;
use crate::schedule::{merge_assignment, TxSchedule};

/// Timer tag: transmit the next scheduled packet.
pub const TAG_SEND: u64 = 1;
/// Timer tag: switch to the pending re-divided schedule (δ elapsed).
pub const TAG_SWITCH: u64 = 2;
/// Timer tag: TCoP probe-reply timeout.
pub const TAG_REPLY_TIMEOUT: u64 = 3;

/// Snapshot of a peer's state for post-run analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerReport {
    /// Peer identity.
    pub me: PeerId,
    /// Whether the peer ever started transmitting.
    pub active: bool,
    /// Activation wave; `None` when never activated. (A sentinel `0`
    /// would be ambiguous: wire-decoded requests can legitimately carry
    /// wave 0, so an activated peer's wave can be 0.)
    pub wave: Option<u32>,
    /// Virtual/wall nanoseconds of first activation (u64::MAX if never).
    pub activated_nanos: u64,
    /// Final per-packet interval (u64::MAX when idle).
    pub interval_nanos: u64,
    /// Scheduled packets (length of the final schedule).
    pub sched_len: usize,
    /// Packets actually sent.
    pub sent: u64,
    /// View size at the end of the run.
    pub view_count: usize,
}

/// State shared by every contents-peer actor.
pub struct Core {
    /// This peer's identity.
    pub me: PeerId,
    /// Directory of the session, shared across all its peers: `n` peers
    /// holding one refcounted directory instead of `n` copied actor
    /// tables.
    pub dir: Arc<Directory>,
    /// Session parameters.
    pub cfg: SessionConfig,
    /// Perceived-active view `VW_i` (always contains `me`).
    pub view: View,
    /// True once transmitting (the paper's *active* state).
    pub active: bool,
    /// Wave at which this peer first activated.
    pub wave: u32,
    /// Nanoseconds of first activation (u64::MAX until then).
    pub activated_nanos: u64,
    /// Live transmission schedule.
    pub sched: TxSchedule,
    /// Re-divided schedule to adopt at the switch point.
    pub pending_switch: Option<TxSchedule>,
    /// Position on the live schedule at which the pending re-division
    /// applies (the mark). The switch happens when the peer has actually
    /// *sent* up to the mark — not merely when δ has elapsed — so
    /// wall-clock timer drift can never drop the packets in
    /// `[pos, mark)`. Runs without a data plane fall back to the δ timer.
    pub switch_at_pos: Option<usize>,
    /// The armed send timer and its fire time, if any.
    send_timer: Option<(TimerId, SimTime)>,
    /// Packets sent so far.
    pub sent: u64,
    /// Per-peer RNG substream (selection decisions).
    pub rng: SimRng,
}

impl Core {
    /// Core for peer `me` of a session. Accepts a plain [`Directory`]
    /// (wrapped on the spot) or an already-shared `Arc<Directory>`.
    pub fn new(me: PeerId, dir: impl Into<Arc<Directory>>, cfg: SessionConfig) -> Core {
        let mut view = View::empty(cfg.n);
        view.insert(me);
        let rng = SimRng::new(cfg.seed).fork(1000 + u64::from(me.0));
        Core {
            me,
            dir: dir.into(),
            cfg,
            view,
            active: false,
            wave: 0,
            activated_nanos: u64::MAX,
            sched: TxSchedule::idle(),
            pending_switch: None,
            switch_at_pos: None,
            send_timer: None,
            sent: 0,
            rng,
        }
    }

    /// The content this session streams.
    pub fn content(&self) -> &ContentDesc {
        &self.cfg.content
    }

    /// Report for post-run analysis.
    pub fn report(&self) -> PeerReport {
        PeerReport {
            me: self.me,
            active: self.active,
            wave: self.active.then_some(self.wave),
            activated_nanos: self.activated_nanos,
            interval_nanos: self.sched.interval_nanos,
            sched_len: self.sched.seq.len(),
            sent: self.sent,
            view_count: self.view.count(),
        }
    }

    /// Send a coordination message, maintaining the Figure-10/11
    /// counters: the legacy paper-model bytes (`coord.bytes`), the
    /// codec-exact transmitted bytes plus its per-kind breakdown
    /// (`coord.bytes_tx[.*]`), and the no-delta comparison series
    /// (`coord.bytes_full`).
    pub fn send_coord(&mut self, ctx: &mut dyn Runtime<Msg>, to: ActorId, msg: Msg) {
        debug_assert!(msg.is_coordination());
        let m = ctx.metrics();
        m.incr_id(mnames::coord_msgs_id());
        m.add_id(mnames::coord_bytes_id(), msg.model_size() as u64);
        let tx = msg.wire_size() as u64;
        m.add_id(mnames::coord_bytes_tx_id(), tx);
        m.add_id(mnames::coord_bytes_tx_kind_id(&msg), tx);
        m.add_id(mnames::coord_bytes_full_id(), msg.full_wire_size() as u64);
        ctx.send(to, msg);
    }

    /// [`Core::send_coord`] for a whole fan-out at once: drains `batch`
    /// through [`Runtime::send_batch`] and maintains the byte counters
    /// with one add per series instead of one per message. Send order —
    /// and therefore the seeded event stream — is identical to sending
    /// the batch elements one by one.
    pub fn send_coord_batch(
        &mut self,
        ctx: &mut dyn Runtime<Msg>,
        batch: &mut Vec<(ActorId, Msg)>,
    ) {
        if batch.is_empty() {
            return;
        }
        let mut model = 0u64;
        let mut tx = 0u64;
        let mut full = 0u64;
        // Fan-out batches are kind-homogeneous (one wave of probes,
        // commits, or activates), so one per-kind add covers them all.
        let kind_id = mnames::coord_bytes_tx_kind_id(&batch[0].1);
        for (_, msg) in batch.iter() {
            debug_assert!(msg.is_coordination());
            debug_assert_eq!(mnames::coord_bytes_tx_kind_id(msg), kind_id);
            model += msg.model_size() as u64;
            tx += msg.wire_size() as u64;
            full += msg.full_wire_size() as u64;
        }
        let m = ctx.metrics();
        m.add_id(mnames::coord_msgs_id(), batch.len() as u64);
        m.add_id(mnames::coord_bytes_id(), model);
        m.add_id(mnames::coord_bytes_tx_id(), tx);
        m.add_id(kind_id, tx);
        m.add_id(mnames::coord_bytes_full_id(), full);
        ctx.send_batch(batch);
    }

    /// Count (and thereby observably drop) a control packet whose kind
    /// this protocol has no handler for.
    pub fn count_unexpected_control(&mut self, ctx: &mut dyn Runtime<Msg>) {
        ctx.metrics().incr_id(mnames::coord_unexpected_kind_id());
    }

    /// The initial assignment a leaf content request confers on this
    /// peer — weighted when the request carries bandwidth weights,
    /// uniform otherwise. Both divisions start from the full content's
    /// enhanced sequence, which `shared` memoizes across the peers of a
    /// plane (every part of one request enhances identical input).
    pub fn request_assignment(
        &mut self,
        req: &ContentRequest,
        shared: &mut RoundShared,
    ) -> TxSchedule {
        let enhanced = shared.enhanced_content(
            self.cfg.content.packets,
            req.h as usize,
            self.cfg.tail_parity,
            self.cfg.coding,
        );
        match &req.weights {
            Some(w) => crate::schedule::weighted_initial_from_enhanced(
                &enhanced,
                self.cfg.content.packets,
                w,
                req.part as usize,
                req.interval_nanos,
            ),
            None => {
                // The uniform initial division is a `DivisionBasis` with
                // the content-rate slot; each part is an O(1) strided
                // view of the shared enhanced sequence.
                let slot = (req.interval_nanos as u128 * self.cfg.content.packets as u128
                    / enhanced.len().max(1) as u128)
                    .max(1) as u64;
                crate::schedule::DivisionBasis::new(enhanced, slot)
                    .assign(req.parts as usize, req.part as usize)
            }
        }
    }

    /// Mark this peer active (first time only), updating the
    /// synchronization metrics.
    pub fn record_activation(&mut self, ctx: &mut dyn Runtime<Msg>, wave: u32) {
        if self.active {
            return;
        }
        self.active = true;
        self.wave = wave;
        self.activated_nanos = ctx.now().as_nanos();
        let msgs = ctx.metrics().counter(mnames::COORD_MSGS);
        let probe_waves = ctx.metrics().counter(mnames::COORD_PROBE_WAVES);
        let now = ctx.now().as_nanos();
        let m = ctx.metrics();
        m.incr(mnames::COORD_ACTIVATIONS);
        m.set_max(mnames::COORD_MAX_WAVE, u64::from(wave));
        m.set(mnames::COORD_MSGS_AT_ACTIVATION, msgs);
        m.set(mnames::COORD_PROBE_WAVES_AT_ACTIVATION, probe_waves);
        m.set(mnames::COORD_LAST_ACTIVATION_NANOS, now);
    }

    /// Install (or DCoP-merge) an assignment and start streaming.
    pub fn adopt(&mut self, ctx: &mut dyn Runtime<Msg>, assignment: TxSchedule) {
        if self.active {
            // Multi-parent: merge into whichever schedule is current —
            // the pending re-division if one is armed, else the live one.
            if let Some(pending) = self.pending_switch.as_mut() {
                *pending = merge_assignment(pending, &assignment);
            } else {
                self.sched = merge_assignment(&self.sched, &assignment);
            }
        } else {
            self.sched = assignment;
        }
        self.arm_send(ctx);
    }

    /// The schedule basis a new division must be computed from: the
    /// pending re-division when one is armed (it supersedes the live
    /// schedule), else the live schedule. Returns
    /// `(sequence, position, interval, delta_for_mark)` — a pending
    /// basis divides from its start (nothing of it has been sent), so
    /// the mark delta is zero.
    pub fn effective_basis(&self) -> (&TxSchedule, usize, u64) {
        match self.pending_switch.as_ref() {
            Some(p) => (p, 0, 0),
            None => (&self.sched, self.sched.pos, self.cfg.delta.as_nanos()),
        }
    }

    /// Arm a re-divided schedule to replace the live one at the switch
    /// point. `live_mark` is the mark position on the live schedule when
    /// the division was derived from it (None when it was derived from an
    /// already-pending schedule, whose original mark still governs).
    ///
    /// A still-pending earlier division is *replaced*, not merged: a new
    /// self-division is always derived from the pending basis (see
    /// [`Core::effective_basis`]), so the new part supersedes the old
    /// pending schedule rather than adding to it.
    pub fn arm_switch(
        &mut self,
        ctx: &mut dyn Runtime<Msg>,
        next: TxSchedule,
        live_mark: Option<usize>,
    ) {
        self.pending_switch = Some(next);
        if live_mark.is_some() {
            self.switch_at_pos = live_mark;
        }
        ctx.set_timer(self.cfg.delta, TAG_SWITCH);
    }

    /// Apply the pending re-division if the live schedule has reached its
    /// mark (or has nothing left to send). `at_timer` marks the δ
    /// fallback path, which applies unconditionally when no data plane is
    /// pacing the position.
    fn maybe_apply_switch(&mut self, ctx: &mut dyn Runtime<Msg>, at_timer: bool) {
        if self.pending_switch.is_none() {
            return;
        }
        let mark = self.switch_at_pos.unwrap_or(0);
        let reached = self.sched.pos >= mark.min(self.sched.seq.len());
        let force = at_timer && !self.cfg.data_plane;
        if reached || force {
            self.sched = self.pending_switch.take().expect("checked");
            self.switch_at_pos = None;
            self.arm_send(ctx);
        }
    }

    /// Handle the δ switch timer (fallback path; the primary switch point
    /// is reaching the mark position while streaming).
    pub fn on_switch_timer(&mut self, ctx: &mut dyn Runtime<Msg>) {
        self.maybe_apply_switch(ctx, true);
    }

    /// (Re-)arm the send timer if streaming is enabled and the current
    /// schedule's next transmission is due earlier than any armed timer —
    /// adopting a faster or phase-earlier schedule pulls the next send
    /// forward instead of waiting out a stale delay.
    pub fn arm_send(&mut self, ctx: &mut dyn Runtime<Msg>) {
        if !self.cfg.data_plane || self.sched.exhausted() {
            return;
        }
        let due = ctx.now() + SimDuration::from_nanos(self.sched.delay_for_next());
        if let Some((tid, at)) = self.send_timer {
            if due >= at {
                return; // existing timer fires soon enough
            }
            ctx.cancel_timer(tid);
        }
        let tid = ctx.set_timer(
            SimDuration::from_nanos(self.sched.delay_for_next()),
            TAG_SEND,
        );
        self.send_timer = Some((tid, due));
    }

    /// Handle the send timer: transmit one packet to the leaf and re-arm.
    pub fn on_send_timer(&mut self, ctx: &mut dyn Runtime<Msg>) {
        self.send_timer = None;
        // Apply a due re-division BEFORE transmitting: when the mark
        // equals the current position the division already owns this
        // packet, and sending it from the old schedule would duplicate it.
        self.maybe_apply_switch(ctx, false);
        if self.sched.exhausted() {
            return;
        }
        let id = self
            .sched
            .seq
            .get(self.sched.pos)
            .expect("in range")
            .clone();
        self.sched.pos += 1;
        self.sent += 1;
        let packet = self.cfg.content.materialize(&id);
        ctx.metrics().incr_id(mnames::data_msgs_id());
        let leaf = self.dir.leaf();
        ctx.send(leaf, Msg::data(self.me, packet));
        self.arm_send(ctx);
    }

    /// Serve a repair request: retransmit the asked-for data packets to
    /// the leaf immediately (repair volumes are small; no pacing).
    pub fn on_nack(&mut self, ctx: &mut dyn Runtime<Msg>, nack: &crate::msg::Nack) {
        if !self.cfg.data_plane {
            return;
        }
        ctx.metrics().incr("repair.requests");
        let leaf = self.dir.leaf();
        for &seq in nack.seqs.iter() {
            if seq.0 == 0 || seq.0 > self.cfg.content.packets {
                continue;
            }
            let packet = self
                .cfg
                .content
                .materialize(&mss_media::PacketId::Data(seq));
            ctx.metrics().incr("repair.packets");
            ctx.metrics().incr_id(mnames::data_msgs_id());
            self.sent += 1;
            ctx.send(leaf, Msg::data(self.me, packet));
        }
    }

    /// The paper's `Select`: up to `m` peers drawn uniformly from the
    /// complement of this peer's view. Selected peers are added to the
    /// view (they are now perceived active / claimed).
    pub fn select_children(&mut self, m: usize) -> Vec<PeerId> {
        let picked = select_from_complement(&self.view, m, &mut self.rng);
        for p in &picked {
            self.view.insert(*p);
        }
        picked
    }

    /// [`Core::select_children`] drawing through caller-owned pool
    /// scratch (one complement buffer per plane instead of one per
    /// selection). Consumes the identical RNG stream.
    pub fn select_children_in(&mut self, m: usize, pool: &mut Vec<PeerId>) -> Vec<PeerId> {
        let picked = select_from_complement_with(&self.view, m, &mut self.rng, pool);
        for p in &picked {
            self.view.insert(*p);
        }
        picked
    }

    /// The view to piggyback on an outgoing coordination message, per the
    /// configured variant. `selected` is the just-chosen child set.
    pub fn piggyback_view(&self, selected: &[PeerId]) -> View {
        match self.cfg.piggyback {
            Piggyback::FullView => self.view.clone(),
            Piggyback::SelectionsOnly => {
                let mut v = View::empty(self.cfg.n);
                v.insert(self.me);
                for p in selected {
                    v.insert(*p);
                }
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use mss_sim::event::ActorId;

    fn core(n: usize) -> Core {
        let dir = Directory::new((0..n as u32).map(ActorId).collect(), ActorId(n as u32));
        Core::new(PeerId(0), dir, SessionConfig::small(n, 3, 7))
    }

    #[test]
    fn new_core_is_dormant_and_self_aware() {
        let c = core(10);
        assert!(!c.active);
        assert!(c.view.contains(PeerId(0)));
        assert_eq!(c.view.count(), 1);
        assert!(c.sched.exhausted());
        let r = c.report();
        assert!(!r.active);
        assert_eq!(r.sent, 0);
    }

    #[test]
    fn select_children_claims_into_view() {
        let mut c = core(10);
        let picked = c.select_children(4);
        assert_eq!(picked.len(), 4);
        for p in &picked {
            assert!(c.view.contains(*p));
        }
        assert_eq!(c.view.count(), 5);
        // Selecting again avoids previously claimed peers.
        let picked2 = c.select_children(10);
        assert_eq!(picked2.len(), 5, "only 5 unclaimed remain");
        for p in &picked2 {
            assert!(!picked.contains(p));
        }
    }

    #[test]
    fn piggyback_variants_differ() {
        let mut c = core(10);
        let picked = c.select_children(2);
        let full = c.piggyback_view(&picked);
        assert_eq!(full.count(), 3);
        c.cfg.piggyback = Piggyback::SelectionsOnly;
        let sel = c.piggyback_view(&picked);
        assert_eq!(sel.count(), 3, "self + 2 selections");
        // Distinction shows once the view has merged outside knowledge.
        c.view.insert(PeerId(9));
        let full2 = c.piggyback_view(&picked);
        assert_eq!(full2.count(), 3, "SelectionsOnly ignores merged view");
        c.cfg.piggyback = Piggyback::FullView;
        assert_eq!(c.piggyback_view(&picked).count(), 4);
    }
}
