//! Metric names recorded during a session and the consolidated
//! [`SessionOutcome`] the harness consumes.

use std::sync::OnceLock;

use mss_sim::metrics::MetricId;

use crate::config::Protocol;

/// Every coordination message sent (requests, controls, probes, replies,
/// commits) — the quantity on Figures 10/11's dotted lines.
pub const COORD_MSGS: &str = "coord.msgs";
/// Bytes of coordination messages under the *paper model* (fixed
/// `n/8`-byte view bitmaps, field-count estimates — `Msg::model_size`).
/// Kept as the historical accounting so the Figure 10/11 series stay
/// comparable across revisions; [`COORD_BYTES_TX`] carries the bytes a
/// codec actually puts on the wire.
pub const COORD_BYTES: &str = "coord.bytes";
/// Bytes of coordination traffic as actually transmitted: exact codec
/// frame lengths with adaptive view encodings and delta piggybacks
/// (`Msg::wire_size`).
pub const COORD_BYTES_TX: &str = "coord.bytes_tx";
/// [`COORD_BYTES_TX`] with every delta piggyback priced as the full
/// adaptively-encoded view (`Msg::full_wire_size`) — the "sparse, no
/// deltas" point on the control-byte comparison curve.
pub const COORD_BYTES_FULL: &str = "coord.bytes_full";
/// Snapshot of [`COORD_MSGS`] taken at each first-activation; its final
/// value is the message count *until all peers started transmitting*.
pub const COORD_MSGS_AT_ACTIVATION: &str = "coord.msgs_at_activation";
/// Number of contents peers that activated.
pub const COORD_ACTIVATIONS: &str = "coord.activations";
/// Maximum activation wave (DCoP/broadcast/unicast rounds).
pub const COORD_MAX_WAVE: &str = "coord.max_wave";
/// Maximum probe wave executed (TCoP; one wave = 3 protocol rounds).
pub const COORD_PROBE_WAVES: &str = "coord.probe_waves";
/// Snapshot of [`COORD_PROBE_WAVES`] at each first-activation: probe
/// waves needed *to synchronize*, excluding post-activation retries.
pub const COORD_PROBE_WAVES_AT_ACTIVATION: &str = "coord.probe_waves_at_activation";
/// Virtual time (nanos) of the last first-activation.
pub const COORD_LAST_ACTIVATION_NANOS: &str = "coord.last_activation_nanos";
/// Fixed round count for protocols with a constant-round structure
/// (centralized 2PC = 3).
pub const COORD_FIXED_ROUNDS: &str = "coord.fixed_rounds";

/// Data packets sent by contents peers.
pub const DATA_MSGS: &str = "data.msgs";

/// Control packets whose kind the receiving protocol does not handle
/// (e.g. an `Announce` reaching a DCoP peer). Such packets are dropped —
/// this counter makes the drop observable instead of silently treating
/// the packet as whatever kind the handler expected.
pub const COORD_UNEXPECTED_KIND: &str = "coord.unexpected_kind";

/// Interned slot id for [`COORD_MSGS`] (bumped on every coordination
/// send — worth skipping the by-name lookup).
pub fn coord_msgs_id() -> MetricId {
    static ID: OnceLock<MetricId> = OnceLock::new();
    *ID.get_or_init(|| mss_sim::metrics::register(COORD_MSGS))
}

/// Interned slot id for [`COORD_BYTES`].
pub fn coord_bytes_id() -> MetricId {
    static ID: OnceLock<MetricId> = OnceLock::new();
    *ID.get_or_init(|| mss_sim::metrics::register(COORD_BYTES))
}

/// Interned slot id for [`COORD_BYTES_TX`].
pub fn coord_bytes_tx_id() -> MetricId {
    static ID: OnceLock<MetricId> = OnceLock::new();
    *ID.get_or_init(|| mss_sim::metrics::register(COORD_BYTES_TX))
}

/// Interned slot id for [`COORD_BYTES_FULL`].
pub fn coord_bytes_full_id() -> MetricId {
    static ID: OnceLock<MetricId> = OnceLock::new();
    *ID.get_or_init(|| mss_sim::metrics::register(COORD_BYTES_FULL))
}

/// Per-kind breakdown of [`COORD_BYTES_TX`]: which message kinds carry
/// the control bytes. Indexed by [`coord_kind_index`].
pub const COORD_BYTES_TX_KINDS: [&str; 9] = [
    "coord.bytes_tx.request",
    "coord.bytes_tx.activate",
    "coord.bytes_tx.probe",
    "coord.bytes_tx.commit",
    "coord.bytes_tx.announce",
    "coord.bytes_tx.reply",
    "coord.bytes_tx.twophase",
    "coord.bytes_tx.assign",
    "coord.bytes_tx.nack",
];

/// Index of a coordination message into [`COORD_BYTES_TX_KINDS`].
///
/// # Panics
///
/// On [`crate::msg::Msg::Data`] — data packets are not coordination
/// traffic and never reach the coordination send paths.
pub fn coord_kind_index(msg: &crate::msg::Msg) -> usize {
    use crate::msg::{ControlKind, Msg};
    match msg {
        Msg::Request(_) => 0,
        Msg::Control(c) => match c.kind {
            ControlKind::Activate => 1,
            ControlKind::Probe => 2,
            ControlKind::Commit => 3,
            ControlKind::Announce => 4,
        },
        Msg::Reply(_) => 5,
        Msg::TwoPhase(_) => 6,
        Msg::Assign(_) => 7,
        Msg::Nack(_) => 8,
        Msg::Data(_) => unreachable!("data packets are not coordination traffic"),
    }
}

/// Interned slot id for a coordination message's per-kind byte counter.
pub fn coord_bytes_tx_kind_id(msg: &crate::msg::Msg) -> MetricId {
    static IDS: OnceLock<[MetricId; 9]> = OnceLock::new();
    let ids = IDS.get_or_init(|| COORD_BYTES_TX_KINDS.map(mss_sim::metrics::register));
    ids[coord_kind_index(msg)]
}

/// Interned slot id for [`DATA_MSGS`] (bumped on every data-packet
/// transmission).
pub fn data_msgs_id() -> MetricId {
    static ID: OnceLock<MetricId> = OnceLock::new();
    *ID.get_or_init(|| mss_sim::metrics::register(DATA_MSGS))
}

/// Interned slot id for [`COORD_UNEXPECTED_KIND`].
pub fn coord_unexpected_kind_id() -> MetricId {
    static ID: OnceLock<MetricId> = OnceLock::new();
    *ID.get_or_init(|| mss_sim::metrics::register(COORD_UNEXPECTED_KIND))
}

/// Consolidated result of one session run.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionOutcome {
    /// Which protocol ran.
    pub protocol: Protocol,
    /// Population size `n`.
    pub n: usize,
    /// Fan-out `H`.
    pub fanout: usize,
    /// Synchronization rounds, per the paper's counting (see
    /// `session::rounds_of`).
    pub rounds: u32,
    /// Coordination messages until every peer had started transmitting.
    pub coord_msgs_until_active: u64,
    /// Coordination messages over the whole run (incl. post-activation
    /// probing/flooding).
    pub coord_msgs_total: u64,
    /// Bytes of coordination traffic over the whole run, under the
    /// paper model ([`COORD_BYTES`]; feeds the Figure 10/11 series).
    pub coord_bytes: u64,
    /// Coordination bytes actually transmitted: exact codec frames with
    /// adaptive views and delta piggybacks ([`COORD_BYTES_TX`]).
    pub coord_bytes_tx: u64,
    /// [`coord_bytes_tx`](Self::coord_bytes_tx) with deltas priced as
    /// full adaptive view frames ([`COORD_BYTES_FULL`]).
    pub coord_bytes_full: u64,
    /// Contents peers that activated (coverage; should equal `n`).
    pub activated: u64,
    /// Nanoseconds from session start to the last activation.
    pub sync_nanos: u64,
    /// Aggregate steady-state send rate of all active peers divided by
    /// the content rate — the paper's Figure 12 quantity, computed from
    /// the converged schedules.
    pub receipt_rate_analytic: f64,
    /// Same quantity measured from actual arrivals at the leaf (None when
    /// the data plane is disabled or too little arrived to measure).
    pub receipt_rate_measured: Option<f64>,
    /// Total payload bytes the leaf accepted divided by the content size —
    /// the volume form of Figure 12's receipt rate (1.0 = no redundancy;
    /// robust to ramp-up/tail effects that skew the mean-rate estimate).
    pub receipt_volume_ratio: f64,
    /// Data packets the leaf accepted.
    pub leaf_accepted: u64,
    /// Packets carrying nothing new (duplicate/already-decoded content).
    pub leaf_duplicates: u64,
    /// Packets dropped by the leaf's `ρ_s` overrun gate.
    pub leaf_overruns: u64,
    /// True when the leaf reconstructed every data packet byte-exactly.
    pub complete: bool,
    /// Nanoseconds to full reconstruction, when complete.
    pub complete_nanos: Option<u64>,
    /// Data packets recovered via parity rather than received directly.
    pub recovered_via_parity: u64,
    /// Data packets never reconstructed (0 when `complete`).
    pub leaf_missing: u64,
    /// Total data messages sent by peers.
    pub data_msgs: u64,
}

impl SessionOutcome {
    /// Messages per peer until activation — a normalized efficiency
    /// figure.
    pub fn msgs_per_peer(&self) -> f64 {
        self.coord_msgs_until_active as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_per_peer_normalizes() {
        let o = SessionOutcome {
            protocol: Protocol::Dcop,
            n: 100,
            fanout: 10,
            rounds: 2,
            coord_msgs_until_active: 500,
            coord_msgs_total: 700,
            coord_bytes: 10_000,
            coord_bytes_tx: 8_000,
            coord_bytes_full: 9_000,
            activated: 100,
            sync_nanos: 1,
            receipt_rate_analytic: 1.0,
            receipt_rate_measured: None,
            receipt_volume_ratio: 0.0,
            leaf_accepted: 0,
            leaf_duplicates: 0,
            leaf_overruns: 0,
            complete: false,
            complete_nanos: None,
            recovered_via_parity: 0,
            leaf_missing: 0,
            data_msgs: 0,
        };
        assert!((o.msgs_per_peer() - 5.0).abs() < 1e-12);
    }
}
