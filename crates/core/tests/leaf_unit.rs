//! Leaf-side unit tests with a mock runtime: gating, duplicate
//! accounting, and repair pacing decisions.

use mss_core::config::{Protocol, RepairConfig, SessionConfig};
use mss_core::leaf::LeafActor;
use mss_core::msg::Msg;
use mss_media::buffer::OverrunGate;
use mss_media::{ContentDesc, PacketId, Seq};
use mss_overlay::Directory;
use mss_sim::event::{ActorId, TimerId};
use mss_sim::metrics::Metrics;
use mss_sim::rng::SimRng;
use mss_sim::time::{SimDuration, SimTime};
use mss_sim::world::{Actor, Runtime};

struct MockRt {
    now: SimTime,
    sent: Vec<(ActorId, Msg)>,
    timers: Vec<(SimDuration, u64)>,
    rng: SimRng,
    metrics: Metrics,
}

impl MockRt {
    fn new() -> MockRt {
        MockRt {
            now: SimTime::ZERO,
            sent: Vec::new(),
            timers: Vec::new(),
            rng: SimRng::new(2),
            metrics: Metrics::new(),
        }
    }
}

impl Runtime<Msg> for MockRt {
    fn id(&self) -> ActorId {
        ActorId(9)
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn actor_count(&self) -> usize {
        10
    }
    fn is_alive(&self, _: ActorId) -> bool {
        true
    }
    fn send(&mut self, to: ActorId, msg: Msg) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.timers.push((delay, tag));
        TimerId(self.timers.len() as u64)
    }
    fn cancel_timer(&mut self, _: TimerId) {}
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
    fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }
}

fn cfg() -> SessionConfig {
    let mut cfg = SessionConfig::small(9, 3, 3);
    cfg.content = ContentDesc::small(4, 20);
    cfg
}

fn dir() -> Directory {
    Directory::new((0..9).map(ActorId).collect(), ActorId(9))
}

fn data_msg(content: &ContentDesc, seq: u64) -> Msg {
    Msg::data(
        mss_overlay::PeerId(0),
        content.materialize(&PacketId::Data(Seq(seq))),
    )
}

#[test]
fn leaf_initiation_contacts_exactly_h_peers() {
    let mut leaf = LeafActor::new(cfg(), Protocol::Dcop, dir(), None);
    let mut rt = MockRt::new();
    leaf.on_start(&mut rt);
    assert_eq!(rt.sent.len(), 3, "H = 3 content requests");
    let mut targets: Vec<u32> = rt.sent.iter().map(|(to, _)| to.0).collect();
    targets.sort_unstable();
    targets.dedup();
    assert_eq!(targets.len(), 3, "distinct peers");
    for (_, msg) in &rt.sent {
        assert!(matches!(msg, Msg::Request(_)));
    }
}

#[test]
fn leaf_counts_duplicates_and_completes() {
    let content = cfg().content;
    let mut leaf = LeafActor::new(cfg(), Protocol::Dcop, dir(), None);
    let mut rt = MockRt::new();
    for s in 1..=20 {
        leaf.on_message(&mut rt, ActorId(0), data_msg(&content, s));
    }
    assert!(leaf.is_complete());
    assert!(leaf.payloads_verified());
    assert_eq!(leaf.duplicates(), 0);
    leaf.on_message(&mut rt, ActorId(0), data_msg(&content, 5));
    assert_eq!(leaf.duplicates(), 1);
}

#[test]
fn gate_drops_are_counted_not_decoded() {
    // A zero-burst gate rejects everything.
    let gate = OverrunGate::new(1, 1);
    let content = cfg().content;
    let mut leaf = LeafActor::new(cfg(), Protocol::Dcop, dir(), Some(gate));
    let mut rt = MockRt::new();
    for s in 1..=20 {
        leaf.on_message(&mut rt, ActorId(0), data_msg(&content, s));
    }
    assert!(leaf.overruns() > 0);
    assert!(!leaf.is_complete());
    assert_eq!(leaf.accepted() + leaf.overruns(), 20);
}

#[test]
fn quiet_incomplete_stream_triggers_nacks() {
    let mut c = cfg();
    c.repair = Some(RepairConfig {
        check_interval: SimDuration::from_millis(10),
        fanout: 2,
        max_rounds: 3,
    });
    let content = c.content;
    let mut leaf = LeafActor::new(c, Protocol::Dcop, dir(), None);
    let mut rt = MockRt::new();
    // Half the content arrives, then silence.
    for s in 1..=10 {
        leaf.on_message(&mut rt, ActorId(0), data_msg(&content, s));
    }
    let repair_timers = rt.timers.len();
    assert!(repair_timers >= 1, "repair check armed on first data");
    // First tick observes progress (baseline 0 -> 10) and re-arms;
    // the second tick sees no progress and NACKs.
    rt.now = SimTime(10_000_000);
    leaf.on_timer(&mut rt, TimerId(1), 100);
    let nacks_after_first: usize = rt
        .sent
        .iter()
        .filter(|(_, m)| matches!(m, Msg::Nack(_)))
        .count();
    assert_eq!(nacks_after_first, 0, "progress observed, no NACK yet");
    rt.now = SimTime(20_000_000);
    leaf.on_timer(&mut rt, TimerId(2), 100);
    let nacks: Vec<&Msg> = rt
        .sent
        .iter()
        .filter(|(_, m)| matches!(m, Msg::Nack(_)))
        .map(|(_, m)| m)
        .collect();
    assert_eq!(nacks.len(), 2, "NACK fanout = 2");
    if let Msg::Nack(n) = nacks[0] {
        let want: Vec<Seq> = (11..=20).map(Seq).collect();
        assert_eq!(n.seqs.as_ref(), &want[..], "exactly the missing seqs");
    }
}

#[test]
fn complete_stream_never_nacks() {
    let mut c = cfg();
    c.repair = Some(RepairConfig::default());
    let content = c.content;
    let mut leaf = LeafActor::new(c, Protocol::Dcop, dir(), None);
    let mut rt = MockRt::new();
    for s in 1..=20 {
        leaf.on_message(&mut rt, ActorId(0), data_msg(&content, s));
    }
    rt.now = SimTime(1_000_000_000);
    for t in 0..5 {
        leaf.on_timer(&mut rt, TimerId(t), 100);
    }
    assert!(rt.sent.iter().all(|(_, m)| !matches!(m, Msg::Nack(_))));
}
