//! Round-engine equivalence suite: plane-hosted peers (slab state +
//! batched round delivery) must be bit-for-bit indistinguishable from
//! solo-hosted boxed actors — same peer reports, same metric counters,
//! same consolidated outcome — across protocols, population sizes,
//! seeds, and crash faults.
//!
//! This is the contract that lets the flattened round engine replace the
//! seed layout without re-validating any experiment: if these pass, every
//! figure produced under `Hosting::Plane` is the figure the seed would
//! have produced.

use proptest::prelude::*;

use mss_core::peer_core::PeerReport;
use mss_core::prelude::*;
use mss_core::session::{Hosting, Session};

/// Run one session under the given hosting and capture everything
/// observable: the peer reports, the full metric counter table, and the
/// consolidated outcome (via `Debug`, which covers its float fields
/// exactly).
fn observe(
    protocol: Protocol,
    n: usize,
    seed: u64,
    faults: &[(u64, u32)],
    hosting: Hosting,
) -> (Vec<PeerReport>, Vec<(String, u64)>, String) {
    let mut cfg = SessionConfig::small(n, 8.min(n), seed);
    cfg.content = ContentDesc::small(seed ^ 0xC0DE, 240);
    let mut session = Session::new(cfg, protocol).hosting(hosting);
    for &(at_ms, victim) in faults {
        session = session.fault(SimDuration::from_millis(at_ms), PeerId(victim));
    }
    let (outcome, world, reports) = session.run_with_world();
    let counters = world
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    (reports, counters, format!("{outcome:?}"))
}

/// Assert plane and solo hosting observe identically for one shape.
fn assert_equivalent(protocol: Protocol, n: usize, seed: u64, faults: &[(u64, u32)]) {
    let plane = observe(protocol, n, seed, faults, Hosting::Plane);
    let solo = observe(protocol, n, seed, faults, Hosting::Solo);
    assert_eq!(
        plane.0, solo.0,
        "peer reports diverged: {protocol:?} n={n} seed={seed} faults={faults:?}"
    );
    assert_eq!(
        plane.1, solo.1,
        "metric counters diverged: {protocol:?} n={n} seed={seed} faults={faults:?}"
    );
    assert_eq!(
        plane.2, solo.2,
        "outcome diverged: {protocol:?} n={n} seed={seed} faults={faults:?}"
    );
}

/// The full deterministic matrix: both protocols, small and large
/// populations, eight seeds each, fault-free.
#[test]
fn plane_matches_solo_across_protocols_sizes_and_seeds() {
    for protocol in [Protocol::Dcop, Protocol::Tcop] {
        for n in [10usize, 100] {
            for seed in 0..8u64 {
                assert_equivalent(protocol, n, seed * 7 + 1, &[]);
            }
        }
    }
}

/// Crash faults land mid-coordination and mid-streaming; the plane's
/// batched delivery must drop a killed member at exactly the same event
/// boundary as the solo world drops its actor.
#[test]
fn plane_matches_solo_under_crash_faults() {
    for protocol in [Protocol::Dcop, Protocol::Tcop] {
        for n in [10usize, 100] {
            for seed in 0..8u64 {
                let victim = (seed as u32 % (n as u32 - 1)) + 1;
                let faults = [(40 + seed * 11, victim), (90, (victim + 3) % n as u32)];
                assert_equivalent(protocol, n, seed * 13 + 5, &faults);
            }
        }
    }
}

/// The unicast chain (DCoP with fan-out forced to 1) exercises the
/// deepest activation waves the plane can see.
#[test]
fn plane_matches_solo_for_unicast_chain() {
    for seed in [3u64, 17, 29] {
        assert_equivalent(Protocol::Unicast, 24, seed, &[]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary shapes: population, fan-out-capped-by-n via
    /// `SessionConfig::small`, seed, and an optional crash — plane and
    /// solo observations must always coincide.
    #[test]
    fn plane_equivalence_holds_for_arbitrary_shapes(
        n in 2usize..40,
        seed in any::<u64>(),
        protocol_tcop in any::<bool>(),
        crash in any::<bool>(),
        crash_at in 20u64..120,
        crash_victim in 1u32..40,
    ) {
        let protocol = if protocol_tcop { Protocol::Tcop } else { Protocol::Dcop };
        let faults: Vec<(u64, u32)> = if crash {
            vec![(crash_at, crash_victim % n as u32)]
        } else {
            Vec::new()
        };
        let plane = observe(protocol, n, seed, &faults, Hosting::Plane);
        let solo = observe(protocol, n, seed, &faults, Hosting::Solo);
        prop_assert_eq!(plane.0, solo.0, "peer reports diverged");
        prop_assert_eq!(plane.1, solo.1, "metric counters diverged");
        prop_assert_eq!(plane.2, solo.2, "outcome diverged");
    }
}
