//! Regression tests for two bugs the round-engine flattening exposed:
//!
//! * **Wave-0 sentinel**: `PeerReport.wave` used to be a bare `u32` with
//!   `0` meaning "never activated" — but a wire-decoded request can
//!   legitimately carry wave 0, making an activated peer look idle. The
//!   report now carries `Option<u32>` and these tests pin both sides.
//! * **Control-kind fallthrough**: a control packet of a kind the
//!   protocol doesn't speak (a probe reaching DCoP, an activate reaching
//!   TCoP) used to fall through to the nearest handler. It must be
//!   dropped — observably, via the `coord.unexpected_kind` counter.

use std::sync::Arc;

use mss_core::metrics::COORD_UNEXPECTED_KIND;
use mss_core::msg::{ContentRequest, ControlKind, ControlPacket, Msg};
use mss_core::plane::{PlanePeer, RoundShared};
use mss_core::prelude::*;
use mss_core::{dcop::DcopPeer, tcop::TcopPeer};
use mss_media::PacketSeq;
use mss_overlay::{Directory, View};
use mss_sim::event::{ActorId, TimerId};
use mss_sim::metrics::Metrics;
use mss_sim::rng::SimRng;
use mss_sim::world::Runtime;

/// Captures everything the peer under test does with its runtime.
struct MockRt {
    sent: Vec<(ActorId, Msg)>,
    timers: Vec<(SimDuration, u64)>,
    rng: SimRng,
    metrics: Metrics,
}

impl MockRt {
    fn new() -> MockRt {
        MockRt {
            sent: Vec::new(),
            timers: Vec::new(),
            rng: SimRng::new(1),
            metrics: Metrics::new(),
        }
    }
}

impl Runtime<Msg> for MockRt {
    fn id(&self) -> ActorId {
        ActorId(0)
    }
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn actor_count(&self) -> usize {
        9
    }
    fn is_alive(&self, _actor: ActorId) -> bool {
        true
    }
    fn send(&mut self, to: ActorId, msg: Msg) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.timers.push((delay, tag));
        TimerId(self.timers.len() as u64 - 1)
    }
    fn cancel_timer(&mut self, _timer: TimerId) {}
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
    fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }
}

fn cfg() -> SessionConfig {
    let mut cfg = SessionConfig::small(8, 3, 5);
    cfg.content = ContentDesc::small(2, 40);
    cfg
}

fn dir() -> Directory {
    Directory::new((0..8).map(ActorId).collect(), ActorId(8))
}

fn request(wave: u32) -> ContentRequest {
    ContentRequest {
        wave,
        interval_nanos: 1_000_000,
        h: 3,
        fanout: 3,
        part: 0,
        parts: 2,
        view: None,
        weights: None,
    }
}

fn control(kind: ControlKind) -> ControlPacket {
    ControlPacket {
        kind,
        from: PeerId(1),
        wave: 1,
        view: Arc::new(View::empty(8)),
        sched: PacketSeq::data_range(10).into(),
        pos: 0,
        interval_nanos: 1_000_000,
        mark_delta_nanos: 0,
        part: 1,
        parts: 2,
        h: 3,
        fanout: 3,
        basis: None,
        view_wire: mss_core::msg::ViewWire::full(),
    }
}

/// An activated peer reports the wave it activated in — even wave 0,
/// which a wire-decoded request can legitimately carry. Under the old
/// `wave: u32` sentinel this peer was indistinguishable from one that
/// never activated.
#[test]
fn wave_zero_activation_is_reported_as_some_zero() {
    let mut rt = MockRt::new();
    let mut shared = RoundShared::default();
    let mut peer = DcopPeer::new(PeerId(0), dir(), cfg());
    peer.plane_message(&mut rt, &mut shared, ActorId(8), Msg::request(request(0)));
    let report = peer.report();
    assert!(report.active);
    assert_eq!(report.wave, Some(0), "wave-0 activation must be Some(0)");
}

/// A peer that never activated reports `wave: None`, not a numeric
/// sentinel that collides with a real wave.
#[test]
fn never_activated_peer_reports_wave_none() {
    let peer = DcopPeer::new(PeerId(0), dir(), cfg());
    let report = peer.report();
    assert!(!report.active);
    assert_eq!(report.wave, None);
    let tpeer = TcopPeer::new(PeerId(0), dir(), cfg());
    assert_eq!(tpeer.report().wave, None);
}

/// DCoP speaks only `Activate`. Every other control kind is dropped and
/// counted — it must not activate the peer, adopt a schedule, or spawn a
/// fan-out.
#[test]
fn dcop_drops_and_counts_non_activate_control_kinds() {
    let mut rt = MockRt::new();
    let mut shared = RoundShared::default();
    let mut peer = DcopPeer::new(PeerId(0), dir(), cfg());
    for (i, kind) in [
        ControlKind::Probe,
        ControlKind::Commit,
        ControlKind::Announce,
    ]
    .into_iter()
    .enumerate()
    {
        peer.plane_message(
            &mut rt,
            &mut shared,
            ActorId(1),
            Msg::control(control(kind)),
        );
        assert_eq!(
            rt.metrics.counter(COORD_UNEXPECTED_KIND),
            i as u64 + 1,
            "{kind:?} must bump the unexpected-kind counter"
        );
    }
    let report = peer.report();
    assert!(!report.active, "an unexpected kind must not activate");
    assert_eq!(report.sched_len, 0, "no schedule may be adopted");
    assert!(rt.sent.is_empty(), "no fan-out may be spawned");
}

/// TCoP speaks `Probe` and `Commit`; `Activate` and `Announce` are
/// dropped and counted the same way.
#[test]
fn tcop_drops_and_counts_activate_and_announce_kinds() {
    let mut rt = MockRt::new();
    let mut shared = RoundShared::default();
    let mut peer = TcopPeer::new(PeerId(0), dir(), cfg());
    for (i, kind) in [ControlKind::Activate, ControlKind::Announce]
        .into_iter()
        .enumerate()
    {
        peer.plane_message(
            &mut rt,
            &mut shared,
            ActorId(1),
            Msg::control(control(kind)),
        );
        assert_eq!(
            rt.metrics.counter(COORD_UNEXPECTED_KIND),
            i as u64 + 1,
            "{kind:?} must bump the unexpected-kind counter"
        );
    }
    let report = peer.report();
    assert!(!report.active, "an unexpected kind must not activate");
    assert!(
        !peer.has_parent(),
        "an unexpected kind must not claim the peer"
    );
    assert!(rt.sent.is_empty(), "no reply or fan-out may be sent");
}

/// The drop is also visible end-to-end: a healthy session records zero
/// unexpected kinds.
#[test]
fn healthy_sessions_record_zero_unexpected_kinds() {
    for protocol in [Protocol::Dcop, Protocol::Tcop] {
        let mut cfg = SessionConfig::small(20, 4, 9);
        cfg.content = ContentDesc::small(9, 80);
        let (outcome, world, _) = Session::new(cfg, protocol).run_with_world();
        assert!(outcome.complete);
        assert_eq!(world.metrics().counter(COORD_UNEXPECTED_KIND), 0);
    }
}
