//! Property-based tests over the coordination protocols themselves:
//! termination, coverage, non-redundancy, determinism, and end-to-end
//! reconstruction for arbitrary session shapes.

use proptest::prelude::*;

use mss_core::config::Piggyback;
use mss_core::prelude::*;
use mss_core::session::Session;
use mss_core::tcop::TcopPeer;
use mss_sim::event::ActorId;

fn arb_shape() -> impl Strategy<Value = (usize, usize, u64)> {
    // (n, H <= n, seed)
    (2usize..26).prop_flat_map(|n| (Just(n), 1usize..=n, any::<u64>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DCoP terminates with every peer active and the content fully
    /// reconstructed, for arbitrary population, fan-out and seed.
    #[test]
    fn dcop_covers_and_completes((n, fanout, seed) in arb_shape()) {
        let mut cfg = SessionConfig::small(n, fanout, seed);
        cfg.content = ContentDesc::small(seed ^ 1, 60);
        let o = Session::new(cfg, Protocol::Dcop)
            .time_limit(SimDuration::from_secs(300))
            .run();
        prop_assert_eq!(o.activated as usize, n, "coverage failure");
        prop_assert!(o.complete, "missing {} packets", o.leaf_missing);
        prop_assert!(o.rounds >= 1);
    }

    /// TCoP terminates with full coverage, unique parents (every peer
    /// claimed exactly once), and rounds in multiples of three.
    #[test]
    fn tcop_builds_a_covering_tree((n, fanout, seed) in arb_shape()) {
        let mut cfg = SessionConfig::small(n, fanout, seed);
        cfg.content = ContentDesc::small(seed ^ 2, 60);
        cfg.piggyback = Piggyback::SelectionsOnly;
        let (o, world, _) = Session::new(cfg, Protocol::Tcop)
            .time_limit(SimDuration::from_secs(300))
            .run_with_world();
        prop_assert_eq!(o.activated as usize, n, "coverage failure");
        prop_assert!(o.complete, "missing {} packets", o.leaf_missing);
        for i in 0..n {
            let p: &TcopPeer = world.actor_as(ActorId(i as u32)).unwrap();
            prop_assert!(p.has_parent(), "CP{} unclaimed", i + 1);
        }
    }

    /// Identical seeds give identical outcomes; the protocols are
    /// bit-deterministic under the simulator.
    #[test]
    fn sessions_are_deterministic(
        (n, fanout, seed) in arb_shape(),
        proto_pick in 0usize..2,
    ) {
        let protocol = [Protocol::Dcop, Protocol::Tcop][proto_pick];
        let mk = || {
            let mut cfg = SessionConfig::small(n, fanout, seed);
            cfg.content = ContentDesc::small(seed ^ 3, 40);
            Session::new(cfg, protocol)
                .time_limit(SimDuration::from_secs(300))
                .run()
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.coord_msgs_total, b.coord_msgs_total);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.sync_nanos, b.sync_nanos);
        prop_assert_eq!(a.data_msgs, b.data_msgs);
        prop_assert_eq!(a.complete_nanos, b.complete_nanos);
    }

    /// The received volume never drops below 1.0 for a complete stream
    /// (the leaf must at least receive the content) and stays below the
    /// full-duplication bound for sane parameters.
    #[test]
    fn volume_ratio_is_bounded((n, fanout, seed) in arb_shape()) {
        let mut cfg = SessionConfig::small(n, fanout, seed);
        cfg.content = ContentDesc::small(seed ^ 4, 80);
        let o = Session::new(cfg, Protocol::Dcop)
            .time_limit(SimDuration::from_secs(300))
            .run();
        prop_assert!(o.complete);
        prop_assert!(o.receipt_volume_ratio >= 0.999,
            "volume {} below content size", o.receipt_volume_ratio);
        // h = max(1, H-1): duplication tops out at 2× plus slack for
        // merge-era re-sends.
        prop_assert!(o.receipt_volume_ratio < 3.0,
            "volume {} implausibly redundant", o.receipt_volume_ratio);
    }

    /// Killing any single peer after coordination still yields ≥97%
    /// of the content (parity + redundancy absorb almost everything).
    #[test]
    fn single_crash_is_mostly_masked(
        n in 6usize..20,
        seed in any::<u64>(),
        victim in 0usize..20,
    ) {
        let fanout = 4.min(n);
        let mut cfg = SessionConfig::small(n, fanout, seed);
        cfg.content = ContentDesc::small(seed ^ 5, 120);
        let victim = PeerId((victim % n) as u32);
        let o = Session::new(cfg, Protocol::Dcop)
            .fault(SimDuration::from_millis(80), victim)
            .time_limit(SimDuration::from_secs(300))
            .run();
        prop_assert_eq!(o.activated as usize, n);
        prop_assert!(o.leaf_missing <= 4,
            "single crash of {victim} lost {} of 120 packets", o.leaf_missing);
    }
}
