//! Sharded-session integration: protocol runs on the parallel kernel
//! must cover the population, complete streaming, and reproduce
//! bit-for-bit for a fixed `(seed, shards)` pair.

use mss_core::prelude::*;
use mss_core::session::sharded_peer_reports;
use mss_overlay::Directory;
use mss_sim::event::ActorId;
use std::sync::Arc;

fn dir_for(n: usize) -> Arc<Directory> {
    Arc::new(Directory::new(
        (0..n as u32).map(ActorId).collect(),
        ActorId(n as u32),
    ))
}

#[test]
fn dcop_sharded_covers_and_completes() {
    for shards in [1usize, 2, 3] {
        let cfg = SessionConfig::small(24, 3, 42);
        let (outcome, world, _) = Session::new(cfg, Protocol::Dcop)
            .shards(shards)
            .run_with_sharded_world();
        assert_eq!(outcome.activated, 24, "shards={shards}");
        assert!(outcome.complete, "shards={shards}");
        assert_eq!(world.shard_count(), shards);
        assert_eq!(world.clamped_cross_events(), 0);
    }
}

#[test]
fn tcop_sharded_covers_and_completes() {
    for shards in [2usize, 4] {
        let cfg = SessionConfig::small(20, 3, 7);
        let (outcome, _, _) = Session::new(cfg, Protocol::Tcop)
            .shards(shards)
            .run_with_sharded_world();
        assert_eq!(outcome.activated, 20, "shards={shards}");
        assert!(outcome.complete, "shards={shards}");
        assert_eq!(outcome.rounds % 3, 0, "TCoP rounds come in threes");
    }
}

#[test]
fn sharded_run_is_deterministic_per_seed_and_shards() {
    let run = |protocol| {
        let cfg = SessionConfig::small(30, 4, 11);
        let (outcome, world, reports) = Session::new(cfg, protocol)
            .shards(3)
            .run_with_sharded_world();
        let counters: Vec<(String, u64)> = world
            .metrics()
            .counters()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        (outcome, world.event_digest(), counters, reports.len())
    };
    for protocol in [Protocol::Dcop, Protocol::Tcop] {
        let a = run(protocol);
        let b = run(protocol);
        assert_eq!(a.0, b.0, "{protocol:?} outcome");
        assert_eq!(a.1, b.1, "{protocol:?} digest");
        assert_eq!(a.2, b.2, "{protocol:?} counters");
        assert_eq!(a.3, b.3);
    }
}

#[test]
fn session_run_dispatches_to_shards_and_agrees_on_coverage() {
    // `run()` with shards > 1 takes the sharded path (deterministic per
    // (seed, shards)); the protocol invariants hold either way.
    let sharded = Session::new(SessionConfig::small(16, 3, 5), Protocol::Dcop)
        .shards(2)
        .run();
    let single = Session::new(SessionConfig::small(16, 3, 5), Protocol::Dcop).run();
    assert_eq!(sharded.activated, 16);
    assert_eq!(single.activated, 16);
    assert!(sharded.complete && single.complete);
}

#[test]
fn instance_link_falls_back_to_single_world() {
    use mss_sim::link::FixedLatency;
    use mss_sim::time::SimDuration;
    // `link()` instances cannot shard; run() must silently use the
    // single world and still finish.
    let outcome = Session::new(SessionConfig::small(12, 3, 9), Protocol::Dcop)
        .link(FixedLatency::new(SimDuration::from_millis(2)))
        .shards(4)
        .run();
    assert_eq!(outcome.activated, 12);
    assert!(outcome.complete);
}

#[test]
fn link_factory_runs_sharded_with_model_lookahead() {
    use mss_sim::link::FixedLatency;
    use mss_sim::time::SimDuration;
    let (outcome, world, _) = Session::new(SessionConfig::small(18, 3, 3), Protocol::Dcop)
        .link_factory(|| FixedLatency::new(SimDuration::from_millis(2)))
        .shards(3)
        .run_with_sharded_world();
    assert_eq!(world.lookahead(), SimDuration::from_millis(2));
    assert_eq!(outcome.activated, 18);
    assert!(outcome.complete);
}

#[test]
fn sharded_fault_injection_still_completes_with_parity() {
    let mut cfg = SessionConfig::small(8, 4, 19);
    cfg.parity_interval = 3;
    let (outcome, _, _) = Session::new(cfg, Protocol::Dcop)
        .fault(mss_sim::time::SimDuration::from_millis(300), PeerId(2))
        .shards(2)
        .run_with_sharded_world();
    assert!(outcome.complete, "parity recovery failed under sharding");
}

#[test]
fn sharded_reports_match_directory_population() {
    let cfg = SessionConfig::small(15, 3, 2);
    let n = cfg.n;
    let (_, world, reports) = Session::new(cfg, Protocol::Tcop)
        .shards(2)
        .run_with_sharded_world();
    assert_eq!(reports.len(), n);
    assert!(reports.iter().all(|r| r.active));
    let again = sharded_peer_reports(&world, Protocol::Tcop, &dir_for(n));
    assert_eq!(again.len(), n);
}

#[test]
fn shard_blocks_partition_exactly() {
    use mss_core::session::shard_blocks;
    for (n, s) in [(10usize, 3usize), (7, 7), (100, 8), (5, 1), (3, 5)] {
        let starts = shard_blocks(n, s);
        assert_eq!(starts.len(), s + 1);
        assert_eq!(*starts.first().unwrap(), 0);
        assert_eq!(*starts.last().unwrap(), n);
        let sizes: Vec<usize> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "n={n} s={s}: uneven blocks {sizes:?}");
    }
}
