//! The NACK-repair extension: leaf-driven retransmission closes the
//! residue that parity alone cannot recover.

use mss_core::config::RepairConfig;
use mss_core::prelude::*;
use mss_core::session::Session;
use mss_sim::link::{FixedLatency, IidLoss};
use mss_sim::time::SimDuration;

fn lossy_session(repair: Option<RepairConfig>, p: f64, seed: u64) -> SessionOutcome {
    let mut cfg = SessionConfig::small(16, 4, seed);
    cfg.content = ContentDesc::small(seed + 1, 400);
    cfg.repair = repair;
    Session::new(cfg, Protocol::Dcop)
        .link(IidLoss {
            p,
            inner: FixedLatency::new(SimDuration::from_millis(1)),
        })
        .time_limit(SimDuration::from_secs(120))
        .run()
}

#[test]
fn repair_completes_what_parity_cannot() {
    let mut unrepaired_incomplete = 0;
    for seed in 0..4 {
        let plain = lossy_session(None, 0.05, 7000 + seed);
        let repaired = lossy_session(Some(RepairConfig::default()), 0.05, 7000 + seed);
        if !plain.complete {
            unrepaired_incomplete += 1;
        }
        assert!(
            repaired.complete,
            "seed {seed}: repair left {} packets missing",
            repaired.leaf_missing
        );
    }
    assert!(
        unrepaired_incomplete > 0,
        "5% loss should defeat parity alone in at least one run \
         (otherwise this test shows nothing)"
    );
}

#[test]
fn repair_is_idle_on_clean_channels() {
    let o = lossy_session(Some(RepairConfig::default()), 0.0, 42);
    assert!(o.complete);
    // No repair rounds should fire when the stream completes cleanly
    // before the quiet-check interval expires on an incomplete state.
    assert_eq!(o.leaf_missing, 0);
}

#[test]
fn repair_survives_crash_plus_loss() {
    let mut cfg = SessionConfig::small(16, 4, 99);
    cfg.content = ContentDesc::small(5, 400);
    cfg.repair = Some(RepairConfig::default());
    let o = Session::new(cfg, Protocol::Dcop)
        .link(IidLoss {
            p: 0.03,
            inner: FixedLatency::new(SimDuration::from_millis(1)),
        })
        .fault(SimDuration::from_millis(70), PeerId(3))
        .fault(SimDuration::from_millis(90), PeerId(11))
        .time_limit(SimDuration::from_secs(120))
        .run();
    assert!(
        o.complete,
        "repair + parity should mask 2 crashes and 3% loss (missing {})",
        o.leaf_missing
    );
}

#[test]
fn repair_gives_up_after_max_rounds() {
    // Kill EVERY peer mid-stream: no amount of NACKing can help, and the
    // leaf must stop asking after max_rounds.
    let mut cfg = SessionConfig::small(6, 3, 123);
    cfg.content = ContentDesc::small(9, 300);
    cfg.repair = Some(RepairConfig {
        check_interval: SimDuration::from_millis(20),
        fanout: 2,
        max_rounds: 3,
    });
    let mut session = Session::new(cfg, Protocol::Dcop).time_limit(SimDuration::from_secs(60));
    for i in 0..6 {
        session = session.fault(SimDuration::from_millis(40), PeerId(i));
    }
    let (o, world, _) = session.run_with_world();
    assert!(!o.complete);
    assert!(
        world.metrics().counter("repair.rounds") <= 3,
        "repair kept trying past max_rounds"
    );
}
