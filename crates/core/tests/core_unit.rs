//! Focused unit tests of the shared peer core (adopt/merge/switch/NACK)
//! against a mock runtime — no world, no protocol, just the mechanics.

use mss_core::config::SessionConfig;
use mss_core::msg::{Msg, Nack};
use mss_core::peer_core::Core;
use mss_core::schedule::{initial_assignment, TxSchedule};
use mss_media::{ContentDesc, PacketSeq, Seq};
use mss_overlay::{Directory, PeerId};
use mss_sim::event::{ActorId, TimerId};
use mss_sim::metrics::Metrics;
use mss_sim::rng::SimRng;
use mss_sim::time::{SimDuration, SimTime};
use mss_sim::world::Runtime;

/// Captures everything the code under test does with its runtime.
struct MockRt {
    now: SimTime,
    sent: Vec<(ActorId, Msg)>,
    timers: Vec<(SimDuration, u64)>,
    rng: SimRng,
    metrics: Metrics,
}

impl MockRt {
    fn new() -> MockRt {
        MockRt {
            now: SimTime::ZERO,
            sent: Vec::new(),
            timers: Vec::new(),
            rng: SimRng::new(1),
            metrics: Metrics::new(),
        }
    }
}

impl Runtime<Msg> for MockRt {
    fn id(&self) -> ActorId {
        ActorId(0)
    }
    fn now(&self) -> SimTime {
        self.now
    }
    fn actor_count(&self) -> usize {
        9
    }
    fn is_alive(&self, _actor: ActorId) -> bool {
        true
    }
    fn send(&mut self, to: ActorId, msg: Msg) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.timers.push((delay, tag));
        TimerId(self.timers.len() as u64 - 1)
    }
    fn cancel_timer(&mut self, _timer: TimerId) {}
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
    fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }
}

fn core() -> Core {
    let dir = Directory::new((0..8).map(ActorId).collect(), ActorId(8));
    let mut cfg = SessionConfig::small(8, 3, 5);
    cfg.content = ContentDesc::small(2, 40);
    Core::new(PeerId(0), dir, cfg)
}

#[test]
fn adopt_streams_from_phase_offset() {
    let mut c = core();
    let mut rt = MockRt::new();
    let a = initial_assignment(40, 3, 4, 1, 1000);
    let first = a.first_delay_nanos;
    c.adopt(&mut rt, a);
    assert_eq!(rt.timers.len(), 1, "send timer armed");
    assert_eq!(rt.timers[0].0.as_nanos(), first);
}

#[test]
fn merge_while_running_keeps_unsent_and_sums_rates() {
    let mut c = core();
    let mut rt = MockRt::new();
    c.adopt(&mut rt, initial_assignment(40, 3, 4, 0, 1000));
    let before_rate = 1e9 / c.sched.interval_nanos as f64;
    c.active = true;
    // Advance the schedule a little.
    c.sched.pos = 2;
    let sent_already = c.sched.seq.get(0).cloned().unwrap();
    c.adopt(&mut rt, initial_assignment(40, 3, 4, 2, 1000));
    let after_rate = 1e9 / c.sched.interval_nanos as f64;
    assert!(
        (after_rate - 2.0 * before_rate).abs() < before_rate * 0.01,
        "merged rate {after_rate} should be ~double {before_rate}"
    );
    assert_eq!(c.sched.pos, 0, "merged schedule restarts its cursor");
    assert!(
        !c.sched.seq.contains(&sent_already),
        "already-sent packets must not be rescheduled"
    );
}

#[test]
fn switch_applies_at_mark_not_before() {
    let mut c = core();
    let mut rt = MockRt::new();
    c.adopt(&mut rt, initial_assignment(40, 1, 1, 0, 1000));
    c.active = true;
    let next = TxSchedule {
        seq: PacketSeq::from_ids(vec![mss_media::PacketId::Data(Seq(39))]).into(),
        pos: 0,
        interval_nanos: 500,
        first_delay_nanos: 500,
    };
    let original_len = c.sched.seq.len();
    c.arm_switch(&mut rt, next, Some(3));
    // δ fires while the data plane is active and the mark not reached:
    // switch must wait.
    c.on_switch_timer(&mut rt);
    assert_eq!(c.sched.seq.len(), original_len, "switched before the mark");
    // Send three packets: the third send crosses the mark, the fourth
    // timer tick applies the pending schedule before transmitting.
    for _ in 0..3 {
        c.on_send_timer(&mut rt);
    }
    assert_eq!(c.sched.pos, 3);
    c.on_send_timer(&mut rt);
    assert_eq!(c.sched.seq.len(), 1, "pending schedule not applied at mark");
}

#[test]
fn switch_timer_forces_when_no_data_plane() {
    let mut c = core();
    c.cfg.data_plane = false;
    let mut rt = MockRt::new();
    c.adopt(&mut rt, initial_assignment(40, 1, 1, 0, 1000));
    let next = TxSchedule {
        seq: PacketSeq::from_ids(vec![mss_media::PacketId::Data(Seq(7))]).into(),
        pos: 0,
        interval_nanos: 500,
        first_delay_nanos: 500,
    };
    c.arm_switch(&mut rt, next, Some(10));
    c.on_switch_timer(&mut rt);
    assert_eq!(
        c.sched.seq.len(),
        1,
        "coordination-only runs must switch on the δ timer"
    );
}

#[test]
fn nack_retransmits_exactly_the_asked_packets() {
    let mut c = core();
    let mut rt = MockRt::new();
    c.on_nack(
        &mut rt,
        &Nack {
            seqs: vec![Seq(3), Seq(9), Seq(0), Seq(999)].into(), // 0 and 999 invalid
        },
    );
    assert_eq!(rt.sent.len(), 2, "only valid seqs retransmitted");
    for (to, msg) in &rt.sent {
        assert_eq!(*to, ActorId(8), "repairs go to the leaf");
        match msg {
            Msg::Data(d) => assert!(d.packet.id.is_data()),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(rt.metrics.counter("repair.packets"), 2);
}

#[test]
fn nack_is_ignored_without_data_plane() {
    let mut c = core();
    c.cfg.data_plane = false;
    let mut rt = MockRt::new();
    c.on_nack(
        &mut rt,
        &Nack {
            seqs: vec![Seq(1)].into(),
        },
    );
    assert!(rt.sent.is_empty());
}

#[test]
fn send_timer_transmits_in_schedule_order_and_stops_at_end() {
    let mut c = core();
    let mut rt = MockRt::new();
    let a = initial_assignment(6, 1, 1, 0, 1000);
    let expect: Vec<_> = a.seq.iter().cloned().collect();
    c.adopt(&mut rt, a);
    for _ in 0..expect.len() + 3 {
        c.on_send_timer(&mut rt);
    }
    let sent_ids: Vec<_> = rt
        .sent
        .iter()
        .map(|(_, m)| match m {
            Msg::Data(d) => d.packet.id.clone(),
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    assert_eq!(sent_ids, expect, "must send exactly the schedule, once");
    assert_eq!(c.sent, expect.len() as u64);
}

#[test]
fn select_children_is_bounded_by_population() {
    let mut c = core();
    let picked = c.select_children(100);
    assert_eq!(picked.len(), 7, "everyone but self");
    assert!(c.view.is_full());
    assert!(c.select_children(1).is_empty());
}
